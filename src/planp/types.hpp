// PLAN-P type representation.
//
// The language is monomorphic: base types, tuple types (`ip*tcp*blob`),
// hash tables (`(host, int) hash_table`) and channel references. Types are
// hash-consed-ish via shared_ptr; equality is structural.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace asp::planp {

class Type;
using TypePtr = std::shared_ptr<const Type>;

class Type {
 public:
  enum class Kind {
    kInt,
    kBool,
    kChar,
    kString,
    kUnit,
    kHost,
    kBlob,
    kIp,    // IP header
    kTcp,   // TCP header
    kUdp,   // UDP header
    kTuple,
    kTable,  // args = {key, value}
    kChan,   // a channel name used as a value (OnRemote's first argument)
    kVar,    // type variable in primitive signatures ('a in tableGet)
    kBottom, // type of `raise`: compatible with everything
  };

  explicit Type(Kind k, std::vector<TypePtr> args = {}, int var_id = -1)
      : kind_(k), args_(std::move(args)), var_id_(var_id) {}

  Kind kind() const { return kind_; }
  const std::vector<TypePtr>& args() const { return args_; }
  int var_id() const { return var_id_; }

  bool is(Kind k) const { return kind_ == k; }
  bool is_tuple() const { return kind_ == Kind::kTuple; }

  /// Structural equality.
  bool equals(const Type& o) const;

  /// "int", "ip*tcp*blob", "(host, int) hash_table", ...
  std::string str() const;

  // Shared singletons for base types.
  static TypePtr Int();
  static TypePtr Bool();
  static TypePtr Char();
  static TypePtr String();
  static TypePtr Unit();
  static TypePtr Host();
  static TypePtr Blob();
  static TypePtr Ip();
  static TypePtr Tcp();
  static TypePtr Udp();
  static TypePtr Chan();
  static TypePtr Bottom();
  static TypePtr Tuple(std::vector<TypePtr> elems);
  static TypePtr Table(TypePtr key, TypePtr value);
  static TypePtr Var(int id);

 private:
  Kind kind_;
  std::vector<TypePtr> args_;
  int var_id_ = -1;
};

inline bool same_type(const TypePtr& a, const TypePtr& b) {
  return a && b && a->equals(*b);
}

/// True for types usable as hash-table keys (scalar types and tuples of them).
bool is_key_type(const TypePtr& t);

/// True for types with a defined equality (`=`, `<>`).
bool is_equality_type(const TypePtr& t);

/// True if `t` is a legal channel packet type: a tuple starting with `ip`,
/// optionally followed by `tcp`/`udp`, then payload fields (blob must be last;
/// scalar payload fields `char`/`int`/`bool`/`string` may precede it).
bool is_packet_type(const TypePtr& t);

}  // namespace asp::planp
