// Human-readable listings of compiled PLAN-P code: bytecode and specialized
// templates. Used by the planpc tool and by tests that pin down codegen.
#pragma once

#include <string>

#include "planp/compile.hpp"
#include "planp/jit.hpp"

namespace asp::planp {

/// One instruction, e.g. "  12: JumpIfFalse -> 27".
std::string disassemble(const CodeBlock& block, const CompiledProgram& prog);

/// Whole program listing with per-channel/function headers.
std::string disassemble(const CompiledProgram& prog);

/// Specialized-template listing (after fusion and patching).
std::string disassemble(const JitBlock& block);

/// Opcode mnemonics.
const char* op_name(Op op);
const char* jop_name(std::int32_t op);

}  // namespace asp::planp
