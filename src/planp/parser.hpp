// Recursive-descent parser for PLAN-P.
#pragma once

#include <string>

#include "planp/ast.hpp"

namespace asp::planp {

/// Parses a full program. Throws PlanPError on syntax errors.
Program parse(const std::string& source);

/// Parses a single expression (tests / REPL-style experiments).
ExprPtr parse_expr(const std::string& source);

}  // namespace asp::planp
