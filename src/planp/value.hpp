// PLAN-P runtime values.
//
// Values are cheap to copy: scalars by value, aggregates (blobs, tuples,
// hash tables) by shared_ptr. Hash tables are the language's only mutable
// data structure (the paper's protocols update tables in place, e.g. the
// HTTP gateway's connection table).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "net/addr.hpp"
#include "net/packet.hpp"
#include "planp/types.hpp"

namespace asp::planp {

class Value;
class HashTable;

struct UnitVal {
  friend bool operator==(UnitVal, UnitVal) { return true; }
};

/// A channel name used as a value.
struct ChanVal {
  std::string name;
  friend bool operator==(const ChanVal& a, const ChanVal& b) { return a.name == b.name; }
};

/// Same rep as asp::net::Buffer: a blob Value and a Packet payload can alias
/// one buffer, which is what makes packet decode zero-copy.
using Blob = asp::net::Buffer;
using TupleRep = std::shared_ptr<std::vector<Value>>;
using TableRef = std::shared_ptr<HashTable>;

/// The scalar subset of Value shapes: representable without heap references,
/// so a pair of them can live inline in a Value (see ScalarPair).
using Scalar = std::variant<UnitVal, std::int64_t, bool, char, asp::net::Ipv4Addr>;

/// Inline two-element tuple of scalars — no shared_ptr<vector>, no heap.
/// Header/field pairs like (host, int) dominate ASP tuple traffic (connection
/// table keys, (state, channel-state) results), so Value::of_pair stores them
/// in place. Indistinguishable from an equivalent TupleRep tuple through
/// equals()/hash()/str()/tuple_at(); as_tuple() promotes lazily when a caller
/// really needs the vector view.
struct ScalarPair {
  Scalar first;
  Scalar second;
};

/// PLAN-P exception, thrown by `raise` and by primitives (e.g. a table lookup
/// miss raises "NotFound"). Caught by `try ... with`.
struct PlanPException {
  std::string name;
};

/// Internal error: an engine saw a value of the wrong shape. The type checker
/// makes this unreachable for checked programs; it guards engine bugs.
struct EvalBug {
  std::string message;
};

class Value {
 public:
  using Rep = std::variant<UnitVal, std::int64_t, bool, char, std::string,
                           asp::net::Ipv4Addr, Blob, asp::net::IpHeader,
                           asp::net::TcpHeader, asp::net::UdpHeader, TupleRep,
                           TableRef, ChanVal, ScalarPair>;

  Value() : rep_(UnitVal{}) {}
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  static Value unit() { return Value{}; }
  static Value of_int(std::int64_t v) { return Value{Rep{v}}; }
  static Value of_bool(bool v) { return Value{Rep{v}}; }
  static Value of_char(char v) { return Value{Rep{v}}; }
  static Value of_string(std::string v) { return Value{Rep{std::move(v)}}; }
  static Value of_host(asp::net::Ipv4Addr v) { return Value{Rep{v}}; }
  static Value of_blob(std::vector<std::uint8_t> v) {
    return Value{Rep{asp::net::make_buffer(std::move(v))}};
  }
  static Value of_blob_shared(Blob b) { return Value{Rep{std::move(b)}}; }
  static Value of_ip(asp::net::IpHeader h) { return Value{Rep{h}}; }
  static Value of_tcp(asp::net::TcpHeader h) { return Value{Rep{h}}; }
  static Value of_udp(asp::net::UdpHeader h) { return Value{Rep{h}}; }
  /// General tuple constructor: the element vector's storage is adopted into
  /// the tuple pool, so it recycles when the last reference drops. Never
  /// inlines — engines use of_pair on the hot path for that.
  static Value of_tuple(std::vector<Value> elems);

  /// Two-element tuple, stored inline (ScalarPair) when both elements are
  /// scalars; falls back to a pooled TupleRep otherwise.
  static Value of_pair(Value a, Value b);

  /// Empty pooled tuple storage with capacity >= `n`: build a tuple without
  /// touching the allocator by push_back into this, then of_tuple_rep. In
  /// steady state the storage comes off the tuple pool's freelist.
  static TupleRep make_tuple_storage(std::size_t n);
  static Value of_tuple_rep(TupleRep t) { return Value{Rep{std::move(t)}}; }

  static Value of_table(TableRef t) { return Value{Rep{std::move(t)}}; }
  static Value of_chan(std::string name) { return Value{Rep{ChanVal{std::move(name)}}}; }

  const Rep& rep() const { return rep_; }

  bool is_unit() const { return std::holds_alternative<UnitVal>(rep_); }

  std::int64_t as_int() const { return get<std::int64_t>("int"); }
  bool as_bool() const { return get<bool>("bool"); }
  char as_char() const { return get<char>("char"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  asp::net::Ipv4Addr as_host() const { return get<asp::net::Ipv4Addr>("host"); }
  const Blob& as_blob() const { return get<Blob>("blob"); }
  const asp::net::IpHeader& as_ip() const { return get<asp::net::IpHeader>("ip"); }
  const asp::net::TcpHeader& as_tcp() const { return get<asp::net::TcpHeader>("tcp"); }
  const asp::net::UdpHeader& as_udp() const { return get<asp::net::UdpHeader>("udp"); }
  /// Vector view of a tuple. An inline ScalarPair is promoted to a pooled
  /// TupleRep first (a logically-const rep change, like hash_cache_) — hot
  /// paths should prefer tuple_size()/tuple_at(), which never promote.
  const std::vector<Value>& as_tuple() const;
  const TableRef& as_table() const { return get<TableRef>("hash_table"); }
  const ChanVal& as_chan() const { return get<ChanVal>("chan"); }

  /// Tuple accessors that work on both reps without promotion.
  bool is_tuple() const {
    return std::holds_alternative<TupleRep>(rep_) ||
           std::holds_alternative<ScalarPair>(rep_);
  }
  std::size_t tuple_size() const;
  Value tuple_at(std::size_t i) const;

  /// Structural equality for equality types; identity for tables.
  bool equals(const Value& o) const;

  /// Hash consistent with equals (key types only; others throw EvalBug).
  /// Aggregate hashes (blob contents, tuples) are memoized per Value: table
  /// keys built from packets get probed several times per packet (contains /
  /// get / set in the HTTP gateway's connection table), and the aggregates
  /// are immutable, so the walk happens once.
  std::size_t hash() const;

  /// Display form, as the paper's `print` primitive would show it.
  std::string str() const;

 private:
  template <typename T>
  const T& get(const char* what) const {
    if (const T* v = std::get_if<T>(&rep_)) return *v;
    throw EvalBug{std::string("value is not a ") + what};
  }

  std::size_t hash_uncached() const;

  Rep rep_;
  // Memoized hash() for Blob/TupleRep reps (0 = not yet computed; computed
  // hashes are nudged off 0). Copies carry the memo with them.
  mutable std::size_t hash_cache_ = 0;
};

/// The `(k, v) hash_table` runtime object: mutable, identity semantics.
class HashTable {
 public:
  explicit HashTable(std::size_t buckets_hint = 16) { map_.reserve(buckets_hint); }

  std::optional<Value> get(const Value& key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  void set(const Value& key, Value v) { map_[key] = std::move(v); }
  bool contains(const Value& key) const { return map_.count(key) > 0; }
  bool remove(const Value& key) { return map_.erase(key) > 0; }
  std::size_t size() const { return map_.size(); }

 private:
  struct Hash {
    std::size_t operator()(const Value& v) const { return v.hash(); }
  };
  struct Eq {
    bool operator()(const Value& a, const Value& b) const { return a.equals(b); }
  };
  std::unordered_map<Value, Value, Hash, Eq> map_;
};

/// Deep default value for a type (used for channels without initstate).
Value default_value(const TypePtr& t);

}  // namespace asp::planp
