#include "planp/program.hpp"

#include "planp/parser.hpp"

namespace asp::planp {

VerificationError::VerificationError(const AnalysisReport& report) : report_(report) {
  message_ = "protocol rejected by verification:";
  if (!report.global_termination) {
    message_ += " [global termination] " + report.global_termination_detail + ";";
  }
  if (!report.linear_duplication) {
    message_ += " [duplication] " + report.duplication_detail + ";";
  }
  if (!report.local_termination) message_ += " [local termination];";
}

std::unique_ptr<Protocol> Protocol::load(const std::string& source, EnvApi& env,
                                         Options opts) {
  auto proto = std::unique_ptr<Protocol>(new Protocol());
  proto->checked_ = typecheck(parse(source));
  proto->report_ = analyze(proto->checked_);
  if (opts.require_verified && !proto->report_.accepted()) {
    throw VerificationError(proto->report_);
  }
  switch (opts.engine) {
    case EngineKind::kInterp:
      proto->engine_ = std::make_unique<Interp>(proto->checked_, env);
      break;
    case EngineKind::kBytecode:
      proto->compiled_ = compile(proto->checked_);
      proto->engine_ = std::make_unique<VmEngine>(proto->compiled_, env);
      break;
    case EngineKind::kJit:
      proto->compiled_ = compile(proto->checked_);
      proto->engine_ = std::make_unique<JitEngine>(proto->compiled_, env);
      break;
  }
  return proto;
}

}  // namespace asp::planp
