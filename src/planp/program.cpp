#include "planp/program.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "planp/parser.hpp"

namespace asp::planp {

namespace {

// Microseconds since `t0`, for the planp/install/* stage histograms.
double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

}  // namespace

VerificationError::VerificationError(const AnalysisReport& report) : report_(report) {
  message_ = "protocol rejected by verification:";
  if (!report.global_termination) {
    message_ += " [global termination] " + report.global_termination_detail + ";";
  }
  if (!report.linear_duplication) {
    message_ += " [duplication] " + report.duplication_detail + ";";
  }
  if (!report.cost_bounded) {
    message_ += " [cost bound] " + report.cost_detail + ";";
  }
  if (!report.local_termination) message_ += " [local termination];";
}

std::unique_ptr<Protocol> Protocol::load(const std::string& source, EnvApi& env,
                                         Options opts) {
  // Stage timings back the paper's "downloading is cheap" claim (Figure 3);
  // every install feeds the planp/install/* histograms in the registry.
  obs::MetricsRegistry& reg = obs::registry();
  auto total0 = std::chrono::steady_clock::now();

  auto proto = std::unique_ptr<Protocol>(new Protocol());
  auto t0 = std::chrono::steady_clock::now();
  Program parsed = parse(source);
  reg.histogram("planp/install/parse_us").observe(us_since(t0));

  t0 = std::chrono::steady_clock::now();
  proto->checked_ = typecheck(std::move(parsed));
  reg.histogram("planp/install/typecheck_us").observe(us_since(t0));

  t0 = std::chrono::steady_clock::now();
  proto->report_ = analyze(proto->checked_);
  reg.histogram("planp/install/verify_us").observe(us_since(t0));
  if (opts.require_verified && !proto->report_.accepted()) {
    reg.counter("planp/install/verify_rejections").inc();
    throw VerificationError(proto->report_);
  }

  t0 = std::chrono::steady_clock::now();
  switch (opts.engine) {
    case EngineKind::kInterp:
      proto->engine_ = std::make_unique<Interp>(proto->checked_, env);
      break;
    case EngineKind::kBytecode:
      proto->compiled_ = compile(proto->checked_);
      proto->engine_ = std::make_unique<VmEngine>(proto->compiled_, env);
      break;
    case EngineKind::kJit:
      proto->compiled_ = compile(proto->checked_);
      proto->engine_ = std::make_unique<JitEngine>(proto->compiled_, env);
      break;
  }
  reg.histogram("planp/install/codegen_us").observe(us_since(t0));
  reg.histogram("planp/install/total_us").observe(us_since(total0));
  reg.counter("planp/install/count").inc();
  return proto;
}

}  // namespace asp::planp
