#include "scenario/scn.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace asp::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool to_int(const std::string& v, int& out) {
  char* end = nullptr;
  long x = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return false;
  out = static_cast<int>(x);
  return true;
}

bool to_u64(const std::string& v, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return end != v.c_str() && *end == '\0';
}

bool to_double(const std::string& v, double& out) {
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

struct Ctx {
  ScenarioConfig* cfg;
  std::string err;  // empty = ok

  bool fail(const std::string& what) {
    err = what;
    return false;
  }
};

bool apply_topology(Ctx& c, const std::string& k, const std::string& v) {
  TopologyParams& t = c.cfg->topology;
  double d;
  if (k == "kind") {
    t.kind = v;
    return true;
  }
  if (k == "k") return to_int(v, t.k) || c.fail("k: not an integer");
  if (k == "hosts_per_edge")
    return to_int(v, t.hosts_per_edge) || c.fail("hosts_per_edge: not an integer");
  if (k == "t1_count") return to_int(v, t.t1_count) || c.fail("t1_count: not an integer");
  if (k == "t2_per_t1") return to_int(v, t.t2_per_t1) || c.fail("t2_per_t1: not an integer");
  if (k == "stubs_per_t2")
    return to_int(v, t.stubs_per_t2) || c.fail("stubs_per_t2: not an integer");
  if (k == "hosts_per_stub")
    return to_int(v, t.hosts_per_stub) || c.fail("hosts_per_stub: not an integer");
  if (k == "metros") return to_int(v, t.metros) || c.fail("metros: not an integer");
  if (k == "aggs_per_metro")
    return to_int(v, t.aggs_per_metro) || c.fail("aggs_per_metro: not an integer");
  if (k == "lans_per_agg")
    return to_int(v, t.lans_per_agg) || c.fail("lans_per_agg: not an integer");
  if (k == "hosts_per_lan")
    return to_int(v, t.hosts_per_lan) || c.fail("hosts_per_lan: not an integer");
  if (k == "seed") return to_u64(v, t.seed) || c.fail("seed: not an integer");
  if (k == "host_bps") return to_double(v, t.host_bps) || c.fail("host_bps: not a number");
  if (k == "edge_bps") return to_double(v, t.edge_bps) || c.fail("edge_bps: not a number");
  if (k == "agg_bps") return to_double(v, t.agg_bps) || c.fail("agg_bps: not a number");
  if (k == "core_bps") return to_double(v, t.core_bps) || c.fail("core_bps: not a number");
  if (k == "access_delay_us") {
    if (!to_double(v, d)) return c.fail("access_delay_us: not a number");
    t.access_delay = net::micros(d);
    return true;
  }
  if (k == "fabric_delay_us") {
    if (!to_double(v, d)) return c.fail("fabric_delay_us: not a number");
    t.fabric_delay = net::micros(d);
    return true;
  }
  return c.fail("unknown [topology] key: " + k);
}

bool apply_impairments(Ctx& c, const std::string& k, const std::string& v) {
  ImpairmentConfig& i = c.cfg->impairments;
  double d;
  if (k == "scope") {
    if (v != "access" && v != "fabric" && v != "all" && v != "none")
      return c.fail("scope must be access|fabric|all|none");
    i.scope = v;
    return true;
  }
  if (k == "loss_rate") return to_double(v, i.loss_rate) || c.fail("loss_rate: not a number");
  if (k == "corrupt_rate")
    return to_double(v, i.corrupt_rate) || c.fail("corrupt_rate: not a number");
  if (k == "duplicate_rate")
    return to_double(v, i.duplicate_rate) || c.fail("duplicate_rate: not a number");
  if (k == "jitter_us") {
    if (!to_double(v, d)) return c.fail("jitter_us: not a number");
    i.jitter = net::micros(d);
    return true;
  }
  if (k == "seed") return to_u64(v, i.seed) || c.fail("seed: not an integer");
  return c.fail("unknown [impairments] key: " + k);
}

bool apply_workload(Ctx& c, const std::string& k, const std::string& v) {
  WorkloadParams& w = c.cfg->workload;
  double d;
  int n;
  if (k == "profile") {
    w.profile = v;
    if (!w.apply_profile()) {
      return c.fail("profile must be http|audio|mpeg|cache");
    }
    return true;
  }
  if (k == "users") return to_u64(v, w.users) || c.fail("users: not an integer");
  if (k == "think_ms")
    return to_double(v, w.think_mean_ms) || c.fail("think_ms: not a number");
  if (k == "timeout_ms") {
    if (!to_double(v, d)) return c.fail("timeout_ms: not a number");
    w.timeout = net::millis(d);
    return true;
  }
  if (k == "server_fraction")
    return to_double(v, w.server_fraction) || c.fail("server_fraction: not a number");
  if (k == "seed") return to_u64(v, w.seed) || c.fail("seed: not an integer");
  if (k == "request_bytes") {
    if (!to_int(v, n) || n < 0) return c.fail("request_bytes: not an integer");
    w.request_bytes = static_cast<std::uint32_t>(n);
    return true;
  }
  if (k == "frames_per_response") {
    if (!to_int(v, n) || n < 1) return c.fail("frames_per_response: bad value");
    w.frames_per_response = static_cast<std::uint32_t>(n);
    return true;
  }
  if (k == "frame_bytes") {
    if (!to_int(v, n) || n < 1) return c.fail("frame_bytes: bad value");
    w.frame_bytes = static_cast<std::uint32_t>(n);
    return true;
  }
  if (k == "objects") return to_u64(v, w.objects) || c.fail("objects: not an integer");
  if (k == "zipf_skew") {
    if (!to_double(v, d) || d < 0) return c.fail("zipf_skew: bad value");
    w.zipf_skew = d;
    return true;
  }
  return c.fail("unknown [workload] key: " + k);
}

bool apply_asp(Ctx& c, const std::string& k, const std::string& v) {
  int n;
  if (k == "monitors") {
    if (v != "none" && v != "core") return c.fail("monitors must be none|core");
    c.cfg->asp_monitors = v;
    return true;
  }
  if (k == "cache") {
    if (v != "none" && v != "planp" && v != "native")
      return c.fail("cache must be none|planp|native");
    c.cfg->asp_cache = v;
    return true;
  }
  if (k == "cache_entries") {
    if (!to_int(v, n) || n < 1) return c.fail("cache_entries: bad value");
    c.cfg->cache_entries = n;
    return true;
  }
  if (k == "cache_ttl_ms") {
    if (!to_int(v, n) || n < 0) return c.fail("cache_ttl_ms: bad value");
    c.cfg->cache_ttl_ms = n;
    return true;
  }
  return c.fail("unknown [asp] key: " + k);
}

bool apply_run(Ctx& c, const std::string& k, const std::string& v) {
  RunConfig& r = c.cfg->run;
  double d;
  if (k == "shards") return to_int(v, r.shards) || c.fail("shards: not an integer");
  if (k == "duration_ms") {
    if (!to_double(v, d)) return c.fail("duration_ms: not a number");
    r.duration = net::millis(d);
    return true;
  }
  return c.fail("unknown [run] key: " + k);
}

}  // namespace

bool parse_scn(const std::string& text, ScenarioConfig& out, std::string& error) {
  out = ScenarioConfig{};
  Ctx ctx{&out, ""};
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string t = trim(line);
    if (t.empty() || t[0] == '#' || t[0] == ';') continue;
    if (t.front() == '[') {
      if (t.back() != ']') {
        error = "line " + std::to_string(lineno) + ": unterminated section";
        return false;
      }
      section = trim(t.substr(1, t.size() - 2));
      if (section != "topology" && section != "impairments" &&
          section != "workload" && section != "asp" && section != "run") {
        error = "line " + std::to_string(lineno) + ": unknown section [" +
                section + "]";
        return false;
      }
      continue;
    }
    std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      error = "line " + std::to_string(lineno) + ": expected key = value";
      return false;
    }
    std::string key = trim(t.substr(0, eq));
    std::string value = trim(t.substr(eq + 1));
    if (key.empty() || value.empty()) {
      error = "line " + std::to_string(lineno) + ": empty key or value";
      return false;
    }
    bool ok;
    if (section == "topology") {
      ok = apply_topology(ctx, key, value);
    } else if (section == "impairments") {
      ok = apply_impairments(ctx, key, value);
    } else if (section == "workload") {
      ok = apply_workload(ctx, key, value);
    } else if (section == "asp") {
      ok = apply_asp(ctx, key, value);
    } else if (section == "run") {
      ok = apply_run(ctx, key, value);
    } else {
      ctx.err = "key before any [section]";
      ok = false;
    }
    if (!ok) {
      error = "line " + std::to_string(lineno) + ": " + ctx.err;
      return false;
    }
  }
  error.clear();
  return true;
}

bool load_scn_file(const std::string& path, ScenarioConfig& out,
                   std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  if (!parse_scn(text, out, error)) return false;
  // name = file stem.
  std::size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  std::size_t dot = base.find_last_of('.');
  out.name = dot == std::string::npos ? base : base.substr(0, dot);
  return true;
}

}  // namespace asp::scenario
