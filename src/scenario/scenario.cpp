#include "scenario/scenario.hpp"

#include "net/exec.hpp"
#include "obs/metrics.hpp"
#include "runtime/engine.hpp"

namespace asp::scenario {

namespace {

/// The transit-tier monitor: a counting forwarder in PLAN-P (the paper's
/// minimal "active" router program). Untagged traffic classifies onto the
/// distinguished `network` channel, so every packet crossing a monitored
/// router is counted in ps and forwarded unchanged by OnRemote.
const char* monitor_asp() {
  return R"(
-- scenario transit monitor: count and forward
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
)";
}

void add_impairments(net::Medium* m, const ImpairmentConfig& c,
                     std::uint64_t salt) {
  net::Impairments imp;
  imp.loss_rate = c.loss_rate;
  imp.corrupt_rate = c.corrupt_rate;
  imp.duplicate_rate = c.duplicate_rate;
  imp.jitter = c.jitter;
  // Per-medium stream: same config everywhere, decorrelated draws.
  imp.seed = c.seed ^ (0x9E3779B97F4A7C15ull * (salt + 1));
  m->set_impairments(imp);
}

void append_kv(std::string& out, const char* key, std::uint64_t v, bool last = false) {
  out += "  \"";
  out += key;
  out += "\": ";
  out += std::to_string(v);
  out += last ? "\n" : ",\n";
}

}  // namespace

Scenario::Scenario(const ScenarioConfig& cfg) : cfg_(cfg) {
  // Coarse metrics: one aggregate instrument set instead of ~14 per
  // node/medium — see obs::instance_metrics_enabled().
  obs::ScopedCoarseMetrics coarse;
  topo_ = build_topology(net_, cfg_.topology);
  workload_ = std::make_unique<Workload>(topo_.hosts, cfg_.workload);
  if (cfg_.asp_monitors == "core") {
    for (net::Node* r : topo_.top_routers) {
      auto rt = std::make_unique<runtime::AspRuntime>(*r);
      rt->install(monitor_asp());
      monitors_.push_back(std::move(rt));
    }
  }
}

Scenario::~Scenario() = default;

void Scenario::apply_impairments() {
  const ImpairmentConfig& c = cfg_.impairments;
  if (!c.any()) return;
  std::uint64_t salt = 0;
  if (c.scope == "access" || c.scope == "all") {
    for (net::Medium* m : topo_.access_media) add_impairments(m, c, salt++);
  }
  if (c.scope == "fabric" || c.scope == "all") {
    for (net::Medium* m : topo_.fabric_media) add_impairments(m, c, salt++);
  }
}

ScenarioMetrics Scenario::run(int shards) {
  if (shards <= 0) shards = cfg_.run.shards;
  // Impairments BEFORE the executor: the partitioner must see them (an
  // impaired link is not cuttable — its RNG draws have to stay serial).
  apply_impairments();

  std::unique_ptr<net::ParallelExecutor> exec;
  if (shards > 1) exec = std::make_unique<net::ParallelExecutor>(net_, shards);
  // Workload timers go onto the (possibly rebound) per-shard queues, so
  // start() must come after the executor is attached.
  workload_->start();
  net_.run_until(cfg_.run.duration);

  ScenarioMetrics m;
  m.name = cfg_.name;
  m.topo_digest = topology_digest(net_);
  m.nodes = net_.nodes().size();
  m.hosts = topo_.hosts.size();
  m.routers = topo_.routers.size();
  m.media = net_.media().size();
  m.sim_time = net_.now();
  m.workload = workload_->stats();
  for (const auto& med : net_.media()) {
    m.delivered_packets += med->delivered_packets();
    m.delivered_bytes += med->delivered_bytes();
    m.dropped_queue += med->dropped_queue();
    m.dropped_loss += med->dropped_loss();
    m.dropped_down += med->dropped_down();
    m.dropped_unaddressed += med->dropped_unaddressed();
  }
  for (const auto& rt : monitors_) {
    runtime::RuntimeStats s = rt->stats();
    m.asp_handled += s.packets_handled;
    m.asp_sent += s.packets_sent;
  }
  m.shards = exec ? exec->shard_count() : 1;
  m.islands = exec ? exec->island_count() : 0;
  return m;
}

std::string ScenarioMetrics::to_json() const {
  std::string out = "{\n";
  out += "  \"scenario\": \"" + name + "\",\n";
  append_kv(out, "topo_digest", topo_digest);
  append_kv(out, "nodes", nodes);
  append_kv(out, "hosts", hosts);
  append_kv(out, "routers", routers);
  append_kv(out, "media", media);
  append_kv(out, "sim_time_ns", sim_time);
  append_kv(out, "requests", workload.requests);
  append_kv(out, "completed", workload.completed);
  append_kv(out, "timeouts", workload.timeouts);
  append_kv(out, "frames_rx", workload.frames_rx);
  append_kv(out, "latency_sum_ns", workload.latency_sum_ns);
  append_kv(out, "latency_max_ns", workload.latency_max_ns);
  append_kv(out, "delivered_packets", delivered_packets);
  append_kv(out, "delivered_bytes", delivered_bytes);
  append_kv(out, "dropped_queue", dropped_queue);
  append_kv(out, "dropped_loss", dropped_loss);
  append_kv(out, "dropped_down", dropped_down);
  append_kv(out, "dropped_unaddressed", dropped_unaddressed);
  append_kv(out, "asp_handled", asp_handled);
  append_kv(out, "asp_sent", asp_sent, /*last=*/true);
  out += "}\n";
  return out;
}

}  // namespace asp::scenario
