#include "scenario/scenario.hpp"

#include "net/exec.hpp"
#include "obs/metrics.hpp"
#include "runtime/engine.hpp"

namespace asp::scenario {

namespace {

/// The transit-tier monitor: a counting forwarder in PLAN-P (the paper's
/// minimal "active" router program). Untagged traffic classifies onto the
/// distinguished `network` channel, so every packet crossing a monitored
/// router is counted in ps and forwarded unchanged by OnRemote.
const char* monitor_asp() {
  return R"(
-- scenario transit monitor: count and forward
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
)";
}

/// The edge-cache ASP ([asp] cache = planp): serves single-frame object
/// responses out of the edge router's object cache. The workload wire
/// format carries [obj:8] at request byte 16 and echoes it at response
/// byte 13 (single-frame responses only — see workload.cpp); profiles
/// without objects put 0 there, which this ASP ignores.
///
/// Fully verified, same shape as asps/cache_proxy.planp: hits ride the
/// destination-preserving `hit` channel (global termination), the lookup is
/// one non-raising cacheGetDefault and the field reads are total blobInt
/// (guaranteed delivery + linear duplication), so install() runs with the
/// default require-verified options.
std::string edge_cache_asp(int entries, std::int64_t ttl_ms) {
  return std::string(R"(-- scenario edge cache: serve single-frame object responses from the edge
val serverPort : int = 9000
val cacheEntries : int = )") + std::to_string(entries) + R"(
val cacheTtlMs : int = )" + std::to_string(ttl_ms) + R"(

channel network(ps : int, ss : unit, p : ip*udp*blob)
initstate cacheConfigure(cacheEntries, cacheTtlMs) is
  let val iph : ip = #1 p
      val udph : udp = #2 p
      val b : blob = #3 p
  in
    if udpDst(udph) = serverPort and blobInt(b, 16) > 0 then
      -- Object request: one non-raising lookup; on a hit, reply with the
      -- cached frame, its seq field rewritten to the requester's so the
      -- client's closed loop matches it.
      let val cached : blob =
            cacheGetDefault(cacheKey(blobInt(b, 16), ipDst(iph)),
                            blobFromString(""))
      in
        if blobLen(cached) > 0 then
          (OnRemote(hit, (ipDestSet(ipSrcSet(iph, ipDst(iph)), ipSrc(iph)),
                          udpSrcSet(udpDstSet(udph, udpSrc(udph)), serverPort),
                          blobPutInt(cached, 0, blobInt(b, 0))));
           (ps + 1, ss))
        else (OnRemote(network, p); (ps, ss))
      end
    else
      if udpSrc(udph) = serverPort and blobInt(b, 13) > 0 then
        -- Single-frame object response from a server: fill, then forward.
        (cacheStore(cacheKey(blobInt(b, 13), ipSrc(iph)), b);
         OnRemote(network, p); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end

-- Hits in transit: edge routers between the serving cache and the client
-- forward them without re-filling (a hit is not an origin response).
channel hit(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(hit, p); (ps, ss))
)";
}

void add_impairments(net::Medium* m, const ImpairmentConfig& c,
                     std::uint64_t salt) {
  net::Impairments imp;
  imp.loss_rate = c.loss_rate;
  imp.corrupt_rate = c.corrupt_rate;
  imp.duplicate_rate = c.duplicate_rate;
  imp.jitter = c.jitter;
  // Per-medium stream: same config everywhere, decorrelated draws.
  imp.seed = c.seed ^ (0x9E3779B97F4A7C15ull * (salt + 1));
  m->set_impairments(imp);
}

void append_kv(std::string& out, const char* key, std::uint64_t v, bool last = false) {
  out += "  \"";
  out += key;
  out += "\": ";
  out += std::to_string(v);
  out += last ? "\n" : ",\n";
}

}  // namespace

/// The native edge cache ([asp] cache = native): the edge_cache_asp()
/// policy hand-written as a C++ IP hook — the planp-vs-native pair that
/// makes PLAN-P's interpretation overhead measurable at scenario scale
/// (the small-rig twin lives in src/apps/cache). Hit replies carry the
/// same `hit` channel tag the ASP uses, and tagged packets pass through
/// untouched, so both tiers fill and serve identically along a path.
class EdgeCache {
 public:
  EdgeCache(net::Node& router, std::size_t entries, std::int64_t ttl_ms)
      : node_(router), store_("cache/" + router.name()) {
    store_.configure(entries, ttl_ms);
    node_.set_ip_hook(
        [this](net::Packet& p, net::Interface&) { return on_packet(p); });
  }

  const planp::CacheStore& store() const { return store_; }

 private:
  static std::uint64_t le64(const std::vector<std::uint8_t>& v, std::size_t at) {
    std::uint64_t x = 0;
    if (at + 8 > v.size()) return 0;  // total, like the ASP's blobInt
    for (std::size_t i = 0; i < 8; ++i) x |= std::uint64_t{v[at + i]} << (i * 8);
    return x;
  }

  bool on_packet(net::Packet& p) {
    if (!p.udp || p.channel_tag != 0) return false;  // hits pass through
    const std::vector<std::uint8_t>& b = p.payload.bytes();
    const auto now_ms =
        static_cast<std::int64_t>(node_.events().now() / net::kNsPerMs);

    // Object request toward a server: serve a held copy from the edge.
    if (p.udp->dport == kServerPort && le64(b, 16) != 0) {
      const std::uint64_t key =
          planp::CacheStore::key_of(le64(b, 16), p.ip.dst.bits());
      if (const net::Buffer* body = store_.lookup(key, now_ms)) {
        // Copy the cached frame (pooled; capacity guaranteed) and rewrite
        // its seq field to the requester's.
        net::Buffer out = net::acquire_buffer((*body)->size());
        auto& bytes = const_cast<std::vector<std::uint8_t>&>(*out);
        bytes = **body;
        for (std::size_t i = 0; i < 8; ++i) bytes[i] = b[i];
        net::Packet reply = net::Packet::make_udp(
            p.ip.dst, p.ip.src, kServerPort, p.udp->sport,
            net::Payload(std::move(out)));
        reply.set_channel("hit");
        reply.id = node_.next_packet_id();
        node_.forward(std::move(reply));
        return true;  // consumed: the request never reaches the server
      }
      return false;  // miss: standard forwarding continues toward the server
    }

    // Single-frame object response from a server: fill, let it continue.
    if (p.udp->sport == kServerPort && le64(b, 13) != 0) {
      store_.store(planp::CacheStore::key_of(le64(b, 13), p.ip.src.bits()),
                   p.payload.buffer(), now_ms);
    }
    return false;
  }

  net::Node& node_;
  planp::CacheStore store_;
};

Scenario::Scenario(const ScenarioConfig& cfg) : cfg_(cfg) {
  // Coarse metrics: one aggregate instrument set instead of ~14 per
  // node/medium — see obs::instance_metrics_enabled().
  obs::ScopedCoarseMetrics coarse;
  topo_ = build_topology(net_, cfg_.topology);
  workload_ = std::make_unique<Workload>(topo_.hosts, cfg_.workload);
  if (cfg_.asp_monitors == "core") {
    for (net::Node* r : topo_.top_routers) {
      auto rt = std::make_unique<runtime::AspRuntime>(*r);
      rt->install(monitor_asp());
      monitors_.push_back(std::move(rt));
    }
  }
  if (cfg_.asp_cache == "planp") {
    const std::string src = edge_cache_asp(cfg_.cache_entries, cfg_.cache_ttl_ms);
    for (net::Node* r : topo_.edge_routers) {
      auto rt = std::make_unique<runtime::AspRuntime>(*r);
      rt->install(src);  // default options: the protocol must verify
      cache_asps_.push_back(std::move(rt));
    }
  } else if (cfg_.asp_cache == "native") {
    for (net::Node* r : topo_.edge_routers) {
      cache_native_.push_back(std::make_unique<EdgeCache>(
          *r, static_cast<std::size_t>(cfg_.cache_entries), cfg_.cache_ttl_ms));
    }
  }
}

Scenario::~Scenario() = default;

void Scenario::apply_impairments() {
  const ImpairmentConfig& c = cfg_.impairments;
  if (!c.any()) return;
  std::uint64_t salt = 0;
  if (c.scope == "access" || c.scope == "all") {
    for (net::Medium* m : topo_.access_media) add_impairments(m, c, salt++);
  }
  if (c.scope == "fabric" || c.scope == "all") {
    for (net::Medium* m : topo_.fabric_media) add_impairments(m, c, salt++);
  }
}

ScenarioMetrics Scenario::run(int shards) {
  if (shards <= 0) shards = cfg_.run.shards;
  // Impairments BEFORE the executor: the partitioner must see them (an
  // impaired link is not cuttable — its RNG draws have to stay serial).
  apply_impairments();

  std::unique_ptr<net::ParallelExecutor> exec;
  if (shards > 1) exec = std::make_unique<net::ParallelExecutor>(net_, shards);
  // Workload timers go onto the (possibly rebound) per-shard queues, so
  // start() must come after the executor is attached.
  workload_->start();
  net_.run_until(cfg_.run.duration);

  ScenarioMetrics m;
  m.name = cfg_.name;
  m.topo_digest = topology_digest(net_);
  m.nodes = net_.nodes().size();
  m.hosts = topo_.hosts.size();
  m.routers = topo_.routers.size();
  m.media = net_.media().size();
  m.sim_time = net_.now();
  m.workload = workload_->stats();
  for (const auto& med : net_.media()) {
    m.delivered_packets += med->delivered_packets();
    m.delivered_bytes += med->delivered_bytes();
    m.dropped_queue += med->dropped_queue();
    m.dropped_loss += med->dropped_loss();
    m.dropped_down += med->dropped_down();
    m.dropped_unaddressed += med->dropped_unaddressed();
  }
  for (const auto& rt : monitors_) {
    runtime::RuntimeStats s = rt->stats();
    m.asp_handled += s.packets_handled;
    m.asp_sent += s.packets_sent;
  }
  auto add_cache = [&m](const planp::CacheStore::Stats& s) {
    m.cache_hits += s.hits;
    m.cache_misses += s.misses;
    m.cache_fills += s.fills;
    m.cache_evictions += s.evictions;
  };
  for (const auto& rt : cache_asps_) add_cache(rt->cache().stats());
  for (const auto& ec : cache_native_) add_cache(ec->store().stats());
  m.shards = exec ? exec->shard_count() : 1;
  m.islands = exec ? exec->island_count() : 0;
  return m;
}

std::string ScenarioMetrics::to_json() const {
  std::string out = "{\n";
  out += "  \"scenario\": \"" + name + "\",\n";
  append_kv(out, "topo_digest", topo_digest);
  append_kv(out, "nodes", nodes);
  append_kv(out, "hosts", hosts);
  append_kv(out, "routers", routers);
  append_kv(out, "media", media);
  append_kv(out, "sim_time_ns", sim_time);
  append_kv(out, "requests", workload.requests);
  append_kv(out, "completed", workload.completed);
  append_kv(out, "timeouts", workload.timeouts);
  append_kv(out, "frames_rx", workload.frames_rx);
  append_kv(out, "latency_sum_ns", workload.latency_sum_ns);
  append_kv(out, "latency_max_ns", workload.latency_max_ns);
  append_kv(out, "latency_p50_ns", workload.latency_quantile_ns(0.50));
  append_kv(out, "latency_p99_ns", workload.latency_quantile_ns(0.99));
  append_kv(out, "origin_requests", workload.origin_requests);
  append_kv(out, "delivered_packets", delivered_packets);
  append_kv(out, "delivered_bytes", delivered_bytes);
  append_kv(out, "dropped_queue", dropped_queue);
  append_kv(out, "dropped_loss", dropped_loss);
  append_kv(out, "dropped_down", dropped_down);
  append_kv(out, "dropped_unaddressed", dropped_unaddressed);
  append_kv(out, "asp_handled", asp_handled);
  append_kv(out, "asp_sent", asp_sent);
  append_kv(out, "cache_hits", cache_hits);
  append_kv(out, "cache_misses", cache_misses);
  append_kv(out, "cache_fills", cache_fills);
  append_kv(out, "cache_evictions", cache_evictions, /*last=*/true);
  out += "}\n";
  return out;
}

}  // namespace asp::scenario
