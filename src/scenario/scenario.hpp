// Scenario: ties a .scn config to a built Network, a Workload and an
// optional ASP monitor tier, runs it (serial or sharded), and reports
// deterministic metrics.
//
// The metrics JSON deliberately contains ONLY simulation-derived values —
// counters, the topology digest, simulated time — never shard counts,
// wall-clock or rates derived from them. That is what lets the determinism
// gates compare the serialized metrics of a serial run byte-for-byte
// against shards=4 and shards=16 runs of the same .scn (ISSUE acceptance;
// bench_parallel and tests/scenario_test.cpp both do exactly this).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "scenario/scn.hpp"
#include "scenario/topology.hpp"
#include "scenario/workload.hpp"

namespace asp::runtime {
class AspRuntime;
}

namespace asp::scenario {

class EdgeCache;  // the native (hand-written C++) edge cache; scenario.cpp

/// Everything a scenario run reports. All fields are byte-identical across
/// shard counts except `shards`/`islands`, which to_json() therefore omits.
struct ScenarioMetrics {
  std::string name;
  std::uint64_t topo_digest = 0;
  std::uint64_t nodes = 0, hosts = 0, routers = 0, media = 0;
  net::SimTime sim_time = 0;
  WorkloadStats workload;
  // Summed over media in creation order.
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_down = 0;
  std::uint64_t dropped_unaddressed = 0;
  // Summed over installed monitor runtimes (0 when asp_monitors = none).
  std::uint64_t asp_handled = 0;
  std::uint64_t asp_sent = 0;
  // Summed over the edge cache tier in edge-router order (0 when
  // asp_cache = none). origin_requests lives in `workload`.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_fills = 0;
  std::uint64_t cache_evictions = 0;
  // Execution details — NOT serialized (differ across shard counts).
  int shards = 1;
  int islands = 0;

  /// Deterministic JSON of the simulation-derived fields only.
  std::string to_json() const;
};

/// One instantiated scenario. Construction builds the topology (under
/// obs::ScopedCoarseMetrics — a 10^4-node build must not mint 10^5 registry
/// instruments), the workload apps and the monitor ASPs; run() executes it.
class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  net::Network& network() { return net_; }
  const ScenarioConfig& config() const { return cfg_; }
  const BuiltTopology& topology() const { return topo_; }

  /// Runs for cfg.run.duration on `shards` shards (0 = take cfg.run.shards;
  /// 1 = serial). One-shot: call run() once per Scenario instance.
  ScenarioMetrics run(int shards = 0);

 private:
  void apply_impairments();

  ScenarioConfig cfg_;
  net::Network net_;
  BuiltTopology topo_;
  std::unique_ptr<Workload> workload_;
  std::vector<std::unique_ptr<runtime::AspRuntime>> monitors_;
  // The edge cache tier, one per edge router ([asp] cache = planp|native).
  std::vector<std::unique_ptr<runtime::AspRuntime>> cache_asps_;
  std::vector<std::unique_ptr<EdgeCache>> cache_native_;
};

}  // namespace asp::scenario
