// The .scn scenario format: one small INI-style file describes a whole
// experiment — topology shape, impairments, workload, shard count.
//
//   # fat_tree_10k.scn
//   [topology]
//   kind = fat_tree
//   k = 34
//   hosts_per_edge = 17
//
//   [impairments]
//   scope = access        # access | fabric | all | none
//   loss_rate = 0.0001
//   seed = 7
//
//   [workload]
//   profile = http        # http | audio | mpeg | cache (shape defaults)
//   users = 100000
//   think_ms = 3000
//
//   [asp]
//   monitors = core       # none | core: counting-forwarder ASPs on the
//                         # transit tier (BuiltTopology::top_routers)
//   cache = planp         # none | planp | native: object cache on the edge
//   cache_entries = 512   # tier (BuiltTopology::edge_routers)
//   cache_ttl_ms = 0      # 0 = entries never expire
//
//   [run]
//   shards = 4
//   duration_ms = 100
//
// Full-line comments start with '#' or ';'. Every section and key must be
// known — a typo is a parse error with a line number, not a silently ignored
// setting (same policy as bench/harness.hpp flags). Shape overrides
// (request_bytes, ...) must come after `profile`, which resets them.
#pragma once

#include <cstdint>
#include <string>

#include "scenario/topology.hpp"
#include "scenario/workload.hpp"

namespace asp::scenario {

/// Which generated media get the impairment configuration.
struct ImpairmentConfig {
  std::string scope = "access";  // access | fabric | all | none
  double loss_rate = 0;
  double corrupt_rate = 0;
  double duplicate_rate = 0;
  net::SimTime jitter = 0;
  std::uint64_t seed = 1;

  bool any() const {
    return scope != "none" && (loss_rate > 0 || corrupt_rate > 0 ||
                               duplicate_rate > 0 || jitter > 0);
  }
};

struct RunConfig {
  int shards = 1;
  net::SimTime duration = net::millis(100);
};

struct ScenarioConfig {
  std::string name = "scenario";
  TopologyParams topology;
  ImpairmentConfig impairments;
  WorkloadParams workload;
  std::string asp_monitors = "none";  // none | core
  // In-network caching tier on BuiltTopology::edge_routers: none, `planp`
  // (the verified edge-cache ASP) or `native` (the hand-written C++ hook —
  // same policy, for measuring the interpretation overhead).
  std::string asp_cache = "none";  // none | planp | native
  int cache_entries = 256;
  std::int64_t cache_ttl_ms = 0;  // 0 = no expiry
  RunConfig run;
};

/// Parses .scn text into `out`. On failure returns false and sets `error`
/// to "line N: what went wrong". `out` is default-initialized first.
bool parse_scn(const std::string& text, ScenarioConfig& out, std::string& error);

/// parse_scn over a file; `out.name` becomes the file stem ("fat_tree_10k"
/// for /path/fat_tree_10k.scn).
bool load_scn_file(const std::string& path, ScenarioConfig& out,
                   std::string& error);

}  // namespace asp::scenario
