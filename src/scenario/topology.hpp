// Internet-scale topology generators (DESIGN.md §6g).
//
// The paper's experiments run on hand-built 3..10-node rigs; scaling the
// claims to "an internet" needs topologies with 10^4 nodes and enough
// structural regularity that routing stays table-driven and small. Three
// generator families, all deterministic in (seed, parameters):
//
//   fat_tree      k-ary data-center fabric: k pods of k/2 edge + k/2 agg
//                 switches, (k/2)^2 cores, hosts_per_edge hosts per edge
//                 switch. k=34, hosts_per_edge=17 gives 9826 hosts and 1445
//                 switches (the checked-in fat_tree_10k.scn).
//   as_hierarchy  a 3-tier AS graph: a full-mesh tier-1 backbone, tier-2
//                 transit ASes multihomed to the backbone, stub ASes with
//                 host LANs hanging off tier-2. Peering choices draw from a
//                 seeded xorshift stream.
//   metro_access  a metro/access tree: one core, `metros` metro routers,
//                 `aggs_per_metro` aggregation routers each serving
//                 shared-Ethernet LANs (exercises EthernetSegment islands).
//
// Addressing is arithmetic, not allocated: fat-tree host links are
// 10.pod.edge.(4h+1)/30, fabric links come sequentially out of
// 172.16.0.0/12, so the same parameters always produce byte-identical
// address plans. Routing tables are the generator's responsibility and stay
// small (longest table: a fat-tree core with k /16s plus its connected
// /30s).
//
// Every generator leaves the partitioner free to cut: inter-router links are
// point-to-point with nonzero delay, so a 10^4-node fabric decomposes into
// thousands of islands (ParallelExecutor merges them into shards).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace asp::scenario {

/// Parameters for every generator family; each kind reads its own fields
/// (defaults give a small but valid instance of each).
struct TopologyParams {
  std::string kind = "fat_tree";  // fat_tree | as_hierarchy | metro_access

  // Link properties (shared by all kinds).
  double host_bps = 100e6;   // host access links
  double edge_bps = 1e9;     // first aggregation tier
  double agg_bps = 10e9;     // second aggregation tier
  double core_bps = 40e9;    // backbone
  net::SimTime access_delay = net::micros(10);
  net::SimTime fabric_delay = net::micros(25);

  // fat_tree: k even, >= 2.
  int k = 4;
  int hosts_per_edge = 2;

  // as_hierarchy.
  int t1_count = 3;        // tier-1 backbone routers (full mesh)
  int t2_per_t1 = 2;       // transit ASes homed under each tier-1
  int stubs_per_t2 = 2;    // stub ASes per transit
  int hosts_per_stub = 4;  // hosts per stub LAN
  std::uint64_t seed = 1;  // drives tier-2 peering choices

  // metro_access.
  int metros = 2;
  int aggs_per_metro = 2;
  int lans_per_agg = 2;
  int hosts_per_lan = 4;
};

/// What a generator hands back: flat host/router lists in creation order
/// (the canonical order every downstream consumer iterates in) plus counts
/// for reporting. Pointers index into the Network's node storage and stay
/// valid for the Network's lifetime.
struct BuiltTopology {
  std::vector<net::Node*> hosts;
  std::vector<net::Node*> routers;
  /// The transit tier ASP monitors install on (fat_tree: cores,
  /// as_hierarchy: tier-1 backbone, metro_access: the core router).
  std::vector<net::Node*> top_routers;
  /// The last router before the hosts — where caching ASPs install
  /// (fat_tree: edge switches, as_hierarchy: stub routers, metro_access:
  /// aggregation routers). Every host-to-host path crosses the edge router
  /// of each endpoint, so an edge cache sees all of its hosts' traffic.
  std::vector<net::Node*> edge_routers;
  /// Media created by the generator, tagged by role for impairment scoping:
  /// access media touch a host, fabric media are router-router.
  std::vector<net::Medium*> access_media;
  std::vector<net::Medium*> fabric_media;

  std::size_t node_count() const { return hosts.size() + routers.size(); }
};

/// Builds the topology described by `p.kind` into `net` (which must be
/// empty). Throws std::invalid_argument on bad parameters (odd k, counts
/// that overflow the addressing plan, unknown kind).
BuiltTopology build_topology(net::Network& net, const TopologyParams& p);

/// Structural digest of a built network: FNV-1a over every node (name,
/// router flag, interface addresses, full routing table) and every medium
/// (name, bandwidth, delay). Two generator runs with equal parameters are
/// byte-identical iff their digests and node/media counts agree — the
/// determinism tests and the bench's serial-vs-sharded gate both key on it.
std::uint64_t topology_digest(const net::Network& net);

}  // namespace asp::scenario
