#include "scenario/topology.hpp"

#include <stdexcept>
#include <string>

namespace asp::scenario {

namespace {

using net::Interface;
using net::Ipv4Addr;
using net::Network;
using net::Node;
using net::PointToPointLink;

/// Sequential /30 allocator out of 172.16.0.0/12 for router-router links.
/// Purely arithmetic: link i always gets the same pair of addresses.
class FabricAddrs {
 public:
  struct Pair {
    Ipv4Addr a, b;
  };
  Pair next() {
    if (idx_ >= (1u << 18)) {  // 2^18 links x 4 addrs = the whole /12
      throw std::invalid_argument("topology exceeds the 172.16/12 fabric plan");
    }
    std::uint32_t base = (Ipv4Addr{172, 16, 0, 0}.bits()) | (idx_ << 2);
    ++idx_;
    return {Ipv4Addr{base + 1}, Ipv4Addr{base + 2}};
  }

 private:
  std::uint32_t idx_ = 0;
};

/// xorshift64: the same deterministic stream the media use for impairments.
std::uint64_t next_rng(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

// ---------------------------------------------------------------------------
// fat_tree
// ---------------------------------------------------------------------------

BuiltTopology build_fat_tree(Network& net, const TopologyParams& p) {
  const int k = p.k, half = k / 2, hpe = p.hosts_per_edge;
  require(k >= 2 && k % 2 == 0, "fat_tree: k must be even and >= 2");
  require(k <= 254, "fat_tree: k must fit the 10.pod.x.x addressing octet");
  require(hpe >= 1 && hpe <= 63, "fat_tree: hosts_per_edge must be in [1, 63]");

  BuiltTopology out;
  FabricAddrs fabric;

  // Switches first (creation order is the canonical order): per pod the k/2
  // edge then k/2 agg switches, then the (k/2)^2 cores.
  std::vector<std::vector<Node*>> edge(static_cast<std::size_t>(k));
  std::vector<std::vector<Node*>> agg(static_cast<std::size_t>(k));
  std::vector<Node*> core;
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      Node& n = net.add_router("e" + std::to_string(pod) + "_" + std::to_string(e));
      n.reserve_ifaces(static_cast<std::size_t>(hpe + half));
      edge[static_cast<std::size_t>(pod)].push_back(&n);
      out.routers.push_back(&n);
      out.edge_routers.push_back(&n);
    }
    for (int a = 0; a < half; ++a) {
      Node& n = net.add_router("a" + std::to_string(pod) + "_" + std::to_string(a));
      n.reserve_ifaces(static_cast<std::size_t>(k));
      agg[static_cast<std::size_t>(pod)].push_back(&n);
      out.routers.push_back(&n);
    }
  }
  for (int c = 0; c < half * half; ++c) {
    Node& n = net.add_router("c" + std::to_string(c));
    n.reserve_ifaces(static_cast<std::size_t>(k));
    core.push_back(&n);
    out.routers.push_back(&n);
    out.top_routers.push_back(&n);
  }

  // Hosts + access links: host h under edge (pod, e) lives on the /30
  // 10.pod.e.(4h)/30 — host .(4h+1), switch .(4h+2).
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      Node* sw = edge[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)];
      for (int h = 0; h < hpe; ++h) {
        Node& host = net.add_node("h" + std::to_string(pod) + "_" +
                                  std::to_string(e) + "_" + std::to_string(h));
        auto pb = static_cast<std::uint8_t>(pod);
        auto eb = static_cast<std::uint8_t>(e);
        auto lo = static_cast<std::uint8_t>(4 * h);
        net::PointToPointLink& l =
            net.link(host, Ipv4Addr{10, pb, eb, static_cast<std::uint8_t>(lo + 1)},
                     *sw, Ipv4Addr{10, pb, eb, static_cast<std::uint8_t>(lo + 2)},
                     p.host_bps, p.access_delay, 64 * 1024, 30);
        host.routes().add_default(0);
        out.hosts.push_back(&host);
        out.access_media.push_back(&l);
      }
    }
  }

  // Edge<->agg full bipartite per pod; agg<->core: agg a owns the core
  // column [a*(k/2), (a+1)*(k/2)).
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        auto [ea, eb2] = fabric.next();
        out.fabric_media.push_back(&net.link(
            *edge[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)], ea,
            *agg[static_cast<std::size_t>(pod)][static_cast<std::size_t>(a)], eb2,
            p.agg_bps, p.fabric_delay, 64 * 1024, 30));
      }
    }
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        auto [aa, ab] = fabric.next();
        out.fabric_media.push_back(&net.link(
            *agg[static_cast<std::size_t>(pod)][static_cast<std::size_t>(a)], aa,
            *core[static_cast<std::size_t>(a * half + c)], ab, p.core_bps,
            p.fabric_delay, 64 * 1024, 30));
      }
    }
  }

  // Routing. Interface layout (by construction order above):
  //   edge: [0..hpe) host links, [hpe..hpe+half) agg links (agg index order)
  //   agg:  [0..half) edge links, [half..k) core links (column order)
  //   core: iface pod (one link per pod, pod order)
  for (int pod = 0; pod < k; ++pod) {
    auto pb = static_cast<std::uint8_t>(pod);
    for (int e = 0; e < half; ++e) {
      // Deterministic single-path "ECMP": edge e uplinks by default through
      // agg (e mod half), spreading edges across the aggregation tier.
      edge[static_cast<std::size_t>(pod)][static_cast<std::size_t>(e)]
          ->routes()
          .add_default(hpe + (e % half));
    }
    for (int a = 0; a < half; ++a) {
      Node* ag = agg[static_cast<std::size_t>(pod)][static_cast<std::size_t>(a)];
      for (int e = 0; e < half; ++e) {
        ag->routes().add(Ipv4Addr{10, pb, static_cast<std::uint8_t>(e), 0}, 24, e);
      }
      ag->routes().add_default(half + (pod % half));  // pod-spread core choice
    }
  }
  for (int c = 0; c < half * half; ++c) {
    Node* co = core[static_cast<std::size_t>(c)];
    for (int pod = 0; pod < k; ++pod) {
      co->routes().add(Ipv4Addr{10, static_cast<std::uint8_t>(pod), 0, 0}, 16, pod);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// as_hierarchy
// ---------------------------------------------------------------------------

BuiltTopology build_as_hierarchy(Network& net, const TopologyParams& p) {
  const int t1n = p.t1_count, t2n = p.t2_per_t1, stn = p.stubs_per_t2;
  const int hps = p.hosts_per_stub;
  require(t1n >= 1 && t2n >= 1 && stn >= 1, "as_hierarchy: counts must be >= 1");
  require(hps >= 1 && hps <= 63, "as_hierarchy: hosts_per_stub must be in [1, 63]");
  const int stubs_total = t1n * t2n * stn;
  require(stubs_total <= 256 * 256, "as_hierarchy: too many stub ASes for 10/8");

  BuiltTopology out;
  FabricAddrs fabric;
  std::uint64_t rng = p.seed != 0 ? p.seed : 1;

  std::vector<Node*> t1(static_cast<std::size_t>(t1n));
  for (int i = 0; i < t1n; ++i) {
    Node& n = net.add_router("t1_" + std::to_string(i));
    t1[static_cast<std::size_t>(i)] = &n;
    out.routers.push_back(&n);
    out.top_routers.push_back(&n);
  }
  // Backbone: full mesh.
  for (int i = 0; i < t1n; ++i) {
    for (int j = i + 1; j < t1n; ++j) {
      auto [a, b] = fabric.next();
      out.fabric_media.push_back(&net.link(*t1[static_cast<std::size_t>(i)], a,
                                           *t1[static_cast<std::size_t>(j)], b,
                                           p.core_bps, p.fabric_delay, 64 * 1024, 30));
    }
  }
  // t1 iface layout: [0..t1n-1 minus self) mesh links in peer order, then
  // child t2 links, then multihome links in arrival order.
  auto t1_mesh_iface = [t1n](int self, int peer) {
    return peer < self ? peer : peer - 1;  // mesh links skip self
  };

  struct T2 {
    Node* node;
    int parent;     // t1 index
    int second;     // multihomed t1 index (may equal parent when t1n == 1)
    int parent_iface_on_t1;
    int second_iface_on_t1;
  };
  std::vector<T2> t2s;
  std::vector<int> t1_next_iface(static_cast<std::size_t>(t1n), t1n - 1);
  for (int i = 0; i < t1n; ++i) {
    for (int j = 0; j < t2n; ++j) {
      Node& n = net.add_router("t2_" + std::to_string(i) + "_" + std::to_string(j));
      out.routers.push_back(&n);
      int second = t1n == 1 ? 0
                            : static_cast<int>(next_rng(rng) %
                                               static_cast<std::uint64_t>(t1n - 1));
      if (t1n > 1 && second >= i) ++second;  // any t1 but the parent
      auto [pa, pb] = fabric.next();
      out.fabric_media.push_back(&net.link(n, pa, *t1[static_cast<std::size_t>(i)],
                                           pb, p.agg_bps, p.fabric_delay,
                                           64 * 1024, 30));
      int pif = t1_next_iface[static_cast<std::size_t>(i)]++;
      int sif = -1;
      if (t1n > 1) {
        auto [sa, sb] = fabric.next();
        out.fabric_media.push_back(
            &net.link(n, sa, *t1[static_cast<std::size_t>(second)], sb, p.agg_bps,
                      p.fabric_delay, 64 * 1024, 30));
        sif = t1_next_iface[static_cast<std::size_t>(second)]++;
      }
      t2s.push_back(T2{&n, i, second, pif, sif});
    }
  }

  // Stubs: stub s (global, grouped by t2) owns 10.(s/256).(s%256).0/24. The
  // stub router takes .254; host h sits on the /30 at .(4h)/30 inside it.
  struct Stub {
    Node* router;
    int t2;  // owning transit index in t2s
  };
  std::vector<Stub> stubs;
  for (std::size_t ti = 0; ti < t2s.size(); ++ti) {
    for (int s = 0; s < stn; ++s) {
      int g = static_cast<int>(stubs.size());
      auto oc1 = static_cast<std::uint8_t>(g / 256);
      auto oc2 = static_cast<std::uint8_t>(g % 256);
      Node& r = net.add_router("s" + std::to_string(g));
      r.reserve_ifaces(static_cast<std::size_t>(hps + 1));
      out.routers.push_back(&r);
      out.edge_routers.push_back(&r);
      for (int h = 0; h < hps; ++h) {
        Node& host = net.add_node("s" + std::to_string(g) + "_h" + std::to_string(h));
        auto lo = static_cast<std::uint8_t>(4 * h);
        out.access_media.push_back(&net.link(
            host, Ipv4Addr{10, oc1, oc2, static_cast<std::uint8_t>(lo + 1)}, r,
            Ipv4Addr{10, oc1, oc2, static_cast<std::uint8_t>(lo + 2)}, p.host_bps,
            p.access_delay, 64 * 1024, 30));
        host.routes().add_default(0);
        out.hosts.push_back(&host);
      }
      auto [ra, rb] = fabric.next();
      out.fabric_media.push_back(&net.link(r, ra, *t2s[ti].node, rb, p.edge_bps,
                                           p.fabric_delay, 64 * 1024, 30));
      r.routes().add_default(hps);  // everything off-AS goes to the transit
      stubs.push_back(Stub{&r, static_cast<int>(ti)});
    }
  }

  // t2 routing: child stub /24s via the stub links (ifaces: 0 = parent t1
  // link, 1 = multihome link if any, then stub links in order), default to
  // the parent t1.
  const int t2_stub_base = t1n > 1 ? 2 : 1;
  for (std::size_t ti = 0; ti < t2s.size(); ++ti) {
    Node* n = t2s[ti].node;
    for (int s = 0; s < stn; ++s) {
      int g = static_cast<int>(ti) * stn + s;
      n->routes().add(Ipv4Addr{10, static_cast<std::uint8_t>(g / 256),
                               static_cast<std::uint8_t>(g % 256), 0},
                      24, t2_stub_base + s);
    }
    n->routes().add_default(0);
  }

  // t1 routing: per-stub /24s — via a child or multihomed t2 when one homes
  // the stub here, else across the mesh to the stub's parent t1.
  for (int i = 0; i < t1n; ++i) {
    Node* n = t1[static_cast<std::size_t>(i)];
    for (std::size_t g = 0; g < stubs.size(); ++g) {
      const T2& owner = t2s[static_cast<std::size_t>(stubs[g].t2)];
      int via;
      if (owner.parent == i) {
        via = owner.parent_iface_on_t1;
      } else if (t1n > 1 && owner.second == i) {
        via = owner.second_iface_on_t1;
      } else {
        via = t1_mesh_iface(i, owner.parent);
      }
      n->routes().add(Ipv4Addr{10, static_cast<std::uint8_t>(g / 256),
                               static_cast<std::uint8_t>(g % 256), 0},
                      24, via);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// metro_access
// ---------------------------------------------------------------------------

BuiltTopology build_metro_access(Network& net, const TopologyParams& p) {
  const int mn = p.metros, an = p.aggs_per_metro, ln = p.lans_per_agg;
  const int hpl = p.hosts_per_lan;
  require(mn >= 1 && an >= 1 && ln >= 1 && hpl >= 1,
          "metro_access: counts must be >= 1");
  require(hpl <= 200, "metro_access: hosts_per_lan must be <= 200");
  const int lan_total = mn * an * ln;
  require(lan_total <= 256 * 256, "metro_access: too many LANs for 10/8");

  BuiltTopology out;
  FabricAddrs fabric;

  Node& core = net.add_router("core");
  core.reserve_ifaces(static_cast<std::size_t>(mn));
  out.routers.push_back(&core);
  out.top_routers.push_back(&core);

  int lan_idx = 0;
  for (int m = 0; m < mn; ++m) {
    Node& metro = net.add_router("m" + std::to_string(m));
    metro.reserve_ifaces(static_cast<std::size_t>(an + 1));
    out.routers.push_back(&metro);
    auto [ca, cb] = fabric.next();
    out.fabric_media.push_back(
        &net.link(core, ca, metro, cb, p.agg_bps, p.fabric_delay, 64 * 1024, 30));
    // metro iface 0 is the core uplink (link() added core's end first, but
    // interfaces are per-node: metro's first iface is this uplink).
    for (int a = 0; a < an; ++a) {
      Node& ag = net.add_router("m" + std::to_string(m) + "_a" + std::to_string(a));
      ag.reserve_ifaces(static_cast<std::size_t>(ln + 1));
      out.routers.push_back(&ag);
      out.edge_routers.push_back(&ag);
      auto [ma, mb] = fabric.next();
      out.fabric_media.push_back(
          &net.link(metro, ma, ag, mb, p.edge_bps, p.fabric_delay, 64 * 1024, 30));
      for (int l = 0; l < ln; ++l) {
        auto oc1 = static_cast<std::uint8_t>(lan_idx / 256);
        auto oc2 = static_cast<std::uint8_t>(lan_idx % 256);
        net::EthernetSegment& seg = net.segment(
            "lan" + std::to_string(lan_idx), p.host_bps, net::micros(5));
        out.access_media.push_back(&seg);
        const Ipv4Addr gw{10, oc1, oc2, 254};
        net.attach(ag, seg, gw);  // /24 connected route
        for (int h = 0; h < hpl; ++h) {
          Node& host = net.add_node("l" + std::to_string(lan_idx) + "_h" +
                                    std::to_string(h));
          net.attach(host, seg, Ipv4Addr{10, oc1, oc2,
                                         static_cast<std::uint8_t>(h + 1)});
          host.routes().add_default(0, gw);  // L2 next hop: the agg's station
          out.hosts.push_back(&host);
        }
        ++lan_idx;
      }
      ag.routes().add_default(0);  // iface 0 = metro uplink
    }
  }

  // Metro m: its own LAN /24s via the agg links (iface a+1), default to core.
  // Core: every LAN /24 via the owning metro (iface m).
  lan_idx = 0;
  for (int m = 0; m < mn; ++m) {
    Node* metro = out.routers[static_cast<std::size_t>(1 + m * (1 + an))];
    for (int a = 0; a < an; ++a) {
      for (int l = 0; l < ln; ++l) {
        Ipv4Addr lan{10, static_cast<std::uint8_t>(lan_idx / 256),
                     static_cast<std::uint8_t>(lan_idx % 256), 0};
        metro->routes().add(lan, 24, 1 + a);
        core.routes().add(lan, 24, m);
        ++lan_idx;
      }
    }
    metro->routes().add_default(0);
  }
  return out;
}

}  // namespace

BuiltTopology build_topology(Network& net, const TopologyParams& p) {
  require(net.nodes().empty(), "build_topology: network must be empty");
  if (p.kind == "fat_tree") return build_fat_tree(net, p);
  if (p.kind == "as_hierarchy") return build_as_hierarchy(net, p);
  if (p.kind == "metro_access") return build_metro_access(net, p);
  throw std::invalid_argument("unknown topology kind: " + p.kind);
}

std::uint64_t topology_digest(const net::Network& net) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  auto mix_str = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  mix(net.nodes().size());
  for (const auto& n : net.nodes()) {
    mix_str(n->name());
    mix(n->router() ? 1 : 0);
    mix(n->iface_count());
    for (std::size_t i = 0; i < n->iface_count(); ++i) {
      mix(n->iface(static_cast<int>(i)).addr().bits());
    }
    for (const net::Route& r : n->routes().routes()) {
      mix(r.prefix.bits());
      mix(static_cast<std::uint64_t>(r.prefix_len));
      mix(static_cast<std::uint64_t>(r.iface));
      mix(r.next_hop.bits());
    }
  }
  mix(net.media().size());
  for (const auto& m : net.media()) {
    mix_str(m->name());
    const double bwd = m->bandwidth_bps();
    std::uint64_t bw;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    __builtin_memcpy(&bw, &bwd, sizeof bw);
    mix(bw);
    mix(m->delay());
  }
  return h;
}

}  // namespace asp::scenario
