// Closed-loop workload synthesizer: 10^5..10^6 modeled users as aggregated
// flow bundles (DESIGN.md §6g).
//
// Simulating a million user sessions as a million sockets would drown the
// event queue in per-session timers. Instead each client host carries ONE
// ClientBundle aggregating U users in the classic closed-loop (think ->
// request -> response -> think) cycle. While n of a bundle's users are
// thinking, the time to the bundle's next request is exponential with rate
// n / think_mean — the superposition of n independent memoryless think
// timers — so the bundle needs exactly one pending timer regardless of U.
// When n changes (a request leaves, a response or timeout returns a user to
// thinking), the timer is resampled; the exponential's memorylessness makes
// that statistically equivalent to keeping per-user timers. One generation
// counter invalidates superseded timer events (the queue has no cheap
// cancel for plain closures).
//
// Traffic is ASP-shaped: a request is one small UDP datagram to a server
// drawn deterministically from the bundle's xorshift64 stream; the server
// streams back `frames_per_response` datagrams (HTTP-object / audio-talkspurt
// / MPEG-GOP profiles pick the sizes), the last one flagged so the client
// can close the loop. A request that sees no last-frame within `timeout`
// returns its user to thinking and counts a timeout (the retransmission-free
// analogue of an aborted page load).
//
// Determinism: every bundle draw happens in deterministic event order on the
// bundle's host (shard-confined), and all cross-host interaction is packets,
// which the parallel executor merges canonically — so the aggregate counters
// are byte-identical across shard counts (tests/scenario_test.cpp pins it).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace asp::scenario {

/// Traffic shape + closed-loop parameters for one scenario.
struct WorkloadParams {
  std::string profile = "http";  // http | audio | mpeg | cache (sizes below)
  std::uint64_t users = 1000;    // total modeled users across all bundles
  double think_mean_ms = 3000;   // mean think time per user
  net::SimTime timeout = net::millis(2000);
  double server_fraction = 0.05;  // leading fraction of hosts that serve
  std::uint64_t seed = 1;

  // Shape (profile defaults; a .scn may override after apply_profile()).
  std::uint32_t request_bytes = 200;
  std::uint32_t frames_per_response = 4;
  std::uint32_t frame_bytes = 1400;

  // Cacheable-object universe (cache profile; 0 disables object ids and
  // keeps the wire format byte-identical to the original three profiles).
  // Requests carry a Zipf-drawn object id; servers echo it into single-frame
  // responses so in-network caches can index what they forward.
  std::uint64_t objects = 0;
  double zipf_skew = 1.0;

  /// Applies the named profile's shape defaults. Unknown profile -> false.
  bool apply_profile();
};

inline constexpr std::uint16_t kServerPort = 9000;
inline constexpr std::uint16_t kClientPort = 9001;

/// Aggregate, deterministic workload counters (summed over bundles in bundle
/// order; no wall-clock anywhere).
struct WorkloadStats {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t latency_sum_ns = 0;  // over completed requests
  std::uint64_t latency_max_ns = 0;
  std::uint64_t origin_requests = 0;  // requests that reached a server (an
                                      // in-network cache hit never does)
  /// log2 histogram of completed-request latency: bucket b counts latencies
  /// with bit_width(ns) == b, i.e. in [2^(b-1), 2^b). Integer buckets sum
  /// deterministically across bundles and shard counts, which a sorted
  /// sample list would not (it is O(completed) state per bundle).
  std::array<std::uint64_t, 65> latency_hist{};

  /// Latency quantile from the histogram: the upper bound (2^b - 1 ns) of
  /// the first bucket whose cumulative count reaches q * completed.
  /// Deterministic and conservative to within the 2x bucket resolution.
  std::uint64_t latency_quantile_ns(double q) const;
};

class ClientBundle;
class ServerApp;

/// Owns every bundle and server socket for one scenario run. Hosts are split
/// by `server_fraction`: the leading ceil(fraction * hosts) hosts serve, the
/// rest carry client bundles with `users` spread round-robin.
class Workload {
 public:
  /// `hosts` is the topology's canonical host list (creation order).
  Workload(const std::vector<net::Node*>& hosts, const WorkloadParams& p);
  ~Workload();
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Schedules the first request of every bundle (call once, before run).
  void start();

  /// Sums per-bundle counters in bundle order (deterministic; call at a
  /// barrier — end of run or between windows).
  WorkloadStats stats() const;

  std::size_t server_count() const { return servers_.size(); }
  std::size_t bundle_count() const { return bundles_.size(); }

 private:
  std::unique_ptr<std::vector<net::Ipv4Addr>> server_addrs_;  // stable: bundles
                                                              // hold a pointer
  std::unique_ptr<std::vector<double>> zipf_cdf_;  // shared Zipf table (may be
                                                   // empty: objects == 0)
  std::vector<std::unique_ptr<ServerApp>> servers_;
  std::vector<std::unique_ptr<ClientBundle>> bundles_;
};

}  // namespace asp::scenario
