#include "scenario/workload.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace asp::scenario {

namespace {

using net::Ipv4Addr;
using net::Node;
using net::Packet;
using net::SimTime;
using net::UdpSocket;

void put_u64(std::vector<std::uint8_t>& v, std::size_t at, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) v[at + static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(x >> (i * 8));
}
void put_u32(std::vector<std::uint8_t>& v, std::size_t at, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) v[at + static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(x >> (i * 8));
}
std::uint64_t get_u64(const std::vector<std::uint8_t>& v, std::size_t at) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i)
    x |= std::uint64_t{v[at + static_cast<std::size_t>(i)]} << (i * 8);
  return x;
}
std::uint32_t get_u32(const std::vector<std::uint8_t>& v, std::size_t at) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i)
    x |= std::uint32_t{v[at + static_cast<std::size_t>(i)]} << (i * 8);
  return x;
}

// Request wire format: [seq:8][frames:4][frame_bytes:4] padded to
// request_bytes; when the workload carries object ids (cache profile) the
// padding's first 8 bytes become [obj:8] at offset 16. Response frame:
// [seq:8][index:4][last:1] padded to frame_bytes; a single-frame response
// to an object request echoes [obj:8] at offset 13 so in-network caches can
// index it. Profiles without objects write obj = 0, which is byte-identical
// to the zero padding — the extension costs the original profiles nothing.
constexpr std::size_t kReqHeader = 16;
constexpr std::size_t kRespHeader = 13;
constexpr std::size_t kReqObjOffset = 16;   // request object id
constexpr std::size_t kRespObjOffset = 13;  // response object-id echo

}  // namespace

bool WorkloadParams::apply_profile() {
  objects = 0;  // only the cache profile carries object ids
  if (profile == "http") {  // one page object per request
    request_bytes = 200;
    frames_per_response = 4;
    frame_bytes = 1400;
  } else if (profile == "audio") {  // a short talkspurt of small frames
    request_bytes = 40;
    frames_per_response = 8;
    frame_bytes = 160;
  } else if (profile == "mpeg") {  // one GOP of near-MTU frames
    request_bytes = 100;
    frames_per_response = 16;
    frame_bytes = 1316;
  } else if (profile == "cache") {  // Zipf-popular single-object fetches
    request_bytes = 64;
    frames_per_response = 1;  // single frame: cacheable as one blob
    frame_bytes = 1400;
    objects = 512;
    zipf_skew = 1.0;
  } else {
    return false;
  }
  return true;
}

/// One serving host: answers every request with the requested frame train,
/// last frame flagged. Counts what it serves — with an in-network cache in
/// front the difference between client requests and `served` is the offload.
class ServerApp {
 public:
  explicit ServerApp(Node& node)
      : node_(node),
        sock_(node, kServerPort, [this](const Packet& p) { on_request(p); }) {}

  std::uint64_t served = 0;  // requests that actually reached this server

 private:
  void on_request(const Packet& p) {
    if (p.payload.size() < kReqHeader || !p.udp) return;
    const std::vector<std::uint8_t>& bytes = p.payload.bytes();
    const std::uint64_t seq = get_u64(bytes, 0);
    std::uint32_t frames = get_u32(bytes, 8);
    std::uint32_t frame_bytes = get_u32(bytes, 12);
    if (frames == 0 || frames > 1024) return;  // malformed
    if (frame_bytes < kRespHeader) frame_bytes = kRespHeader;
    ++served;
    const std::uint64_t obj =
        bytes.size() >= kReqObjOffset + 8 ? get_u64(bytes, kReqObjOffset) : 0;
    for (std::uint32_t i = 0; i < frames; ++i) {
      std::vector<std::uint8_t> payload(frame_bytes, 0);
      put_u64(payload, 0, seq);
      put_u32(payload, 8, i);
      payload[12] = i + 1 == frames ? 1 : 0;
      // Echo the object id into single-frame responses only: a cache must
      // never index one frame of a multi-frame train as the whole object.
      if (obj != 0 && frames == 1 && frame_bytes >= kRespObjOffset + 8) {
        put_u64(payload, kRespObjOffset, obj);
      }
      sock_.send_to(p.ip.src, kClientPort, std::move(payload));
    }
  }

  Node& node_;
  UdpSocket sock_;
};

/// U users aggregated into one closed-loop generator on one host (see the
/// header comment for the superposition argument).
class ClientBundle {
 public:
  ClientBundle(Node& node, std::uint64_t users, const WorkloadParams& p,
               const std::vector<Ipv4Addr>* servers,
               const std::vector<double>* zipf_cdf, std::uint64_t rng_seed)
      : node_(node),
        params_(p),
        servers_(servers),
        zipf_cdf_(zipf_cdf),
        thinking_(users),
        rng_(rng_seed != 0 ? rng_seed : 1),
        think_mean_ns_(p.think_mean_ms * 1e6),
        sock_(node, kClientPort, [this](const Packet& pk) { on_frame(pk); }) {}

  void start() { schedule_next(); }

  // Per-bundle counters (read at barriers, in bundle order).
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t frames_rx = 0;
  std::uint64_t latency_sum_ns = 0;
  std::uint64_t latency_max_ns = 0;
  std::array<std::uint64_t, 65> latency_hist{};

 private:
  struct Pending {
    std::uint64_t seq;
    SimTime sent;
  };

  std::uint64_t next_rng() {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
  }

  /// Resamples the bundle timer for the current thinking count. Bumping
  /// `gen_` orphans any previously scheduled fire (memorylessness makes the
  /// fresh draw statistically equivalent to continuing the old one).
  void schedule_next() {
    ++gen_;
    if (thinking_ == 0) return;  // every user is waiting on a response
    double u = static_cast<double>(next_rng() >> 11) * 0x1.0p-53;
    if (u <= 0) u = 0x1.0p-53;
    double dt = think_mean_ns_ * -std::log(u) / static_cast<double>(thinking_);
    auto delay = static_cast<SimTime>(dt);
    if (delay < 1) delay = 1;
    const std::uint64_t gen = gen_;
    node_.events().schedule_in(delay, [this, gen] {
      if (gen == gen_) fire();
    });
  }

  void fire() {
    const SimTime now = node_.events().now();
    const std::uint64_t seq = ++seq_;
    const Ipv4Addr server =
        (*servers_)[static_cast<std::size_t>(next_rng() % servers_->size())];
    // Object id (cache profile): inverse-CDF draw from the shared Zipf
    // table. Ids are 1-based — 0 on the wire means "no object".
    std::uint64_t obj = 0;
    if (zipf_cdf_ != nullptr && !zipf_cdf_->empty()) {
      const double u = static_cast<double>(next_rng() >> 11) * 0x1.0p-53;
      const auto it =
          std::lower_bound(zipf_cdf_->begin(), zipf_cdf_->end(), u);
      obj = static_cast<std::uint64_t>(it - zipf_cdf_->begin()) + 1;
      if (obj > zipf_cdf_->size()) obj = zipf_cdf_->size();
    }
    std::vector<std::uint8_t> payload(
        std::max<std::size_t>(params_.request_bytes,
                              obj != 0 ? kReqObjOffset + 8 : kReqHeader),
        0);
    put_u64(payload, 0, seq);
    put_u32(payload, 8, params_.frames_per_response);
    put_u32(payload, 12, params_.frame_bytes);
    if (obj != 0) put_u64(payload, kReqObjOffset, obj);
    sock_.send_to(server, kServerPort, std::move(payload));
    inflight_.push_back(Pending{seq, now});
    --thinking_;
    ++requests;
    node_.events().schedule_in(params_.timeout, [this, seq] { on_timeout(seq); });
    schedule_next();
  }

  void on_frame(const Packet& p) {
    if (p.payload.size() < kRespHeader) return;
    ++frames_rx;
    if (p.payload[12] == 0) return;  // not the last frame of its response
    const std::uint64_t seq = get_u64(p.payload.bytes(), 0);
    for (std::size_t i = 0; i < inflight_.size(); ++i) {
      if (inflight_[i].seq != seq) continue;
      const SimTime lat = node_.events().now() - inflight_[i].sent;
      latency_sum_ns += lat;
      if (lat > latency_max_ns) latency_max_ns = lat;
      ++latency_hist[std::bit_width(static_cast<std::uint64_t>(lat) | 1)];
      ++completed;
      inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
      ++thinking_;
      schedule_next();
      return;
    }
    // No match: the request already timed out — a late response, dropped.
  }

  void on_timeout(std::uint64_t seq) {
    for (std::size_t i = 0; i < inflight_.size(); ++i) {
      if (inflight_[i].seq != seq) continue;
      inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
      ++timeouts;
      ++thinking_;
      schedule_next();
      return;
    }
  }

  Node& node_;
  const WorkloadParams params_;
  const std::vector<Ipv4Addr>* servers_;
  const std::vector<double>* zipf_cdf_;
  std::uint64_t thinking_;
  std::uint64_t rng_;
  double think_mean_ns_;
  std::uint64_t gen_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<Pending> inflight_;  // FIFO by sent time; linear scan is fine
                                   // (|inflight| <= users per bundle, tens)
  UdpSocket sock_;
};

Workload::Workload(const std::vector<net::Node*>& hosts, const WorkloadParams& p) {
  if (hosts.size() < 2) {
    throw std::invalid_argument("workload needs at least 2 hosts");
  }
  auto ns = static_cast<std::size_t>(
      static_cast<double>(hosts.size()) * p.server_fraction);
  if (ns < 1) ns = 1;
  if (ns > hosts.size() - 1) ns = hosts.size() - 1;

  server_addrs_ = std::make_unique<std::vector<Ipv4Addr>>();
  server_addrs_->reserve(ns);
  for (std::size_t i = 0; i < ns; ++i) {
    servers_.push_back(std::make_unique<ServerApp>(*hosts[i]));
    server_addrs_->push_back(hosts[i]->addr());
  }

  // One shared Zipf CDF for every bundle: P(obj = i) ~ 1 / i^skew. The table
  // is pure arithmetic in (objects, zipf_skew), so it is identical across
  // runs and shard counts.
  zipf_cdf_ = std::make_unique<std::vector<double>>();
  if (p.objects > 0) {
    zipf_cdf_->reserve(p.objects);
    double total = 0;
    for (std::uint64_t i = 1; i <= p.objects; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i), p.zipf_skew);
    }
    double acc = 0;
    for (std::uint64_t i = 1; i <= p.objects; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), p.zipf_skew);
      zipf_cdf_->push_back(acc / total);
    }
  }

  const std::size_t clients = hosts.size() - ns;
  const std::uint64_t base = p.users / clients;
  const std::uint64_t rem = p.users % clients;
  for (std::size_t i = 0; i < clients; ++i) {
    const std::uint64_t users = base + (i < rem ? 1 : 0);
    if (users == 0) continue;  // fewer users than hosts: trailing hosts idle
    const std::uint64_t seed = p.seed ^ (0x9E3779B97F4A7C15ull * (i + 1));
    bundles_.push_back(std::make_unique<ClientBundle>(
        *hosts[ns + i], users, p, server_addrs_.get(), zipf_cdf_.get(), seed));
  }
}

Workload::~Workload() = default;

void Workload::start() {
  for (auto& b : bundles_) b->start();
}

WorkloadStats Workload::stats() const {
  WorkloadStats s;
  for (const auto& b : bundles_) {
    s.requests += b->requests;
    s.completed += b->completed;
    s.timeouts += b->timeouts;
    s.frames_rx += b->frames_rx;
    s.latency_sum_ns += b->latency_sum_ns;
    if (b->latency_max_ns > s.latency_max_ns) s.latency_max_ns = b->latency_max_ns;
    for (std::size_t i = 0; i < b->latency_hist.size(); ++i) {
      s.latency_hist[i] += b->latency_hist[i];
    }
  }
  for (const auto& srv : servers_) s.origin_requests += srv->served;
  return s;
}

std::uint64_t WorkloadStats::latency_quantile_ns(double q) const {
  std::uint64_t total = 0;
  for (std::uint64_t c : latency_hist) total += c;
  if (total == 0) return 0;
  auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;
  if (target > total) target = total;
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < latency_hist.size(); ++b) {
    acc += latency_hist[b];
    if (acc >= target) {
      return b >= 64 ? ~0ull : (std::uint64_t{1} << b) - 1;
    }
  }
  return 0;  // unreachable: acc == total >= target at the last bucket
}

}  // namespace asp::scenario
