// Hierarchical binmap: a three-tier bitmap over a growable index range with
// O(1) find-first-set, in the style of csuperalloc's c_binmap (SNIPPETS.md
// snippet 2). The slab allocator uses one per size class to answer "which
// chunk has a free block" without walking a freelist:
//
//   l0   one 64-bit word; bit g set  <=>  l1[g] has a set bit
//   l1   up to 64 words;  bit w set  <=>  l2[g*64 + w] has a set bit
//   l2   up to 4096 words; bit i of word w  <=>  index w*64+i is set
//
// find_first() is three countr_zero calls — no loops, no branches beyond the
// empty check — so a slab allocation is a constant handful of instructions
// regardless of how many chunks the class owns. Capacity is 64^3 = 262,144
// indices; set() grows l2 on demand (cold: only when a class gains chunks).
//
// Single-owner: a binmap belongs to one shard's pool and is only touched by
// the thread bound to that shard (mem/shard.hpp). No atomics, no locks.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace asp::mem {

class Binmap {
 public:
  static constexpr int kWordBits = 64;
  static constexpr std::uint32_t kCapacity = 64u * 64u * 64u;

  /// Marks `i` set, growing the level-2 array if `i` is beyond any index
  /// seen so far. Growth is amortized over chunk creation, never on the
  /// steady-state alloc/free path.
  void set(std::uint32_t i) {
    assert(i < kCapacity && "binmap index overflow");
    const std::uint32_t w = i / kWordBits;
    if (w >= l2_.size()) l2_.resize(w + 1, 0);
    l2_[w] |= std::uint64_t{1} << (i % kWordBits);
    l1_[w / kWordBits] |= std::uint64_t{1} << (w % kWordBits);
    l0_ |= std::uint64_t{1} << (w / kWordBits);
  }

  /// Marks `i` clear, propagating emptiness up the tiers.
  void clear(std::uint32_t i) {
    const std::uint32_t w = i / kWordBits;
    if (w >= l2_.size()) return;
    l2_[w] &= ~(std::uint64_t{1} << (i % kWordBits));
    if (l2_[w] == 0) {
      const std::uint32_t g = w / kWordBits;
      l1_[g] &= ~(std::uint64_t{1} << (w % kWordBits));
      if (l1_[g] == 0) l0_ &= ~(std::uint64_t{1} << g);
    }
  }

  bool test(std::uint32_t i) const {
    const std::uint32_t w = i / kWordBits;
    return w < l2_.size() && ((l2_[w] >> (i % kWordBits)) & 1) != 0;
  }

  bool any() const { return l0_ != 0; }

  /// Lowest set index, or -1 when empty: three find-first-set steps.
  std::int32_t find_first() const {
    if (l0_ == 0) return -1;
    const std::uint32_t g = static_cast<std::uint32_t>(std::countr_zero(l0_));
    const std::uint32_t w =
        g * kWordBits + static_cast<std::uint32_t>(std::countr_zero(l1_[g]));
    return static_cast<std::int32_t>(
        w * kWordBits + static_cast<std::uint32_t>(std::countr_zero(l2_[w])));
  }

 private:
  std::uint64_t l0_ = 0;
  std::uint64_t l1_[kWordBits] = {};
  std::vector<std::uint64_t> l2_;
};

}  // namespace asp::mem
