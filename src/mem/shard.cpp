#include "mem/shard.hpp"

#include <cassert>
#include <mutex>

namespace asp::mem {

// --- slot factory registry ----------------------------------------------------

namespace {
// Leaked: factories register from static-local initializers in subsystem
// accessors (planp's tuple_pool, net's packet_boxes) whose order relative to
// this file's statics is unspecified.
std::vector<ShardPools::SlotFactory>& slot_factories() {
  static auto* v = new std::vector<ShardPools::SlotFactory>;
  return *v;
}
std::mutex& slot_mu() {
  static auto* mu = new std::mutex;
  return *mu;
}
}  // namespace

int ShardPools::register_slot(SlotFactory f) {
  std::lock_guard<std::mutex> lock(slot_mu());
  auto& v = slot_factories();
  assert(v.size() < static_cast<std::size_t>(kMaxSlots) && "raise kMaxSlots");
  v.push_back(f);
  return static_cast<int>(v.size()) - 1;
}

// --- shard pool set -----------------------------------------------------------

ShardPools::ShardPools(int id)
    : id_(id),
      locked_(id < 0),
      label_(id < 0 ? "orphan" : "shard" + std::to_string(id)),
      slab_("mem/" + label_ + "/slab", token(), locked_),
      buffers_("mem/" + label_ + "/buffer", slab_, token(), locked_) {
  pools_.push_back(&slab_);
  pools_.push_back(&buffers_);
}

PoolBase* ShardPools::slot(int s) {
  assert(s >= 0 && s < kMaxSlots);
  // Owner-thread-only for shard instances; the orphan can be reached from
  // several dying threads at once, so its slot table locks.
  MaybeLock lk(locked_ ? &slot_mu() : nullptr);
  if (slots_[s] == nullptr) {
    SlotFactory f;
    if (locked_) {
      f = slot_factories()[static_cast<std::size_t>(s)];  // already locked
    } else {
      std::lock_guard<std::mutex> lock(slot_mu());
      f = slot_factories()[static_cast<std::size_t>(s)];
    }
    PoolBase* p = f(*this);
    pools_.push_back(p);
    slots_[s] = p;
  }
  return slots_[s];
}

void ShardPools::drain_remote() {
  MaybeLock lk(locked_ ? &slot_mu() : nullptr);  // guards pools_ iteration
  for (PoolBase* p : pools_) p->drain_remote();
}

void ShardPools::purge_free() {
  MaybeLock lk(locked_ ? &slot_mu() : nullptr);
  // Node pools first, slab last: releasing the last buffer handles frees
  // their slab-backed control blocks, which purge then reclaims.
  for (auto it = pools_.rbegin(); it != pools_.rend(); ++it) (*it)->purge_free();
}

void ShardPools::reset_stats_for_test() {
  MaybeLock lk(locked_ ? &slot_mu() : nullptr);
  for (PoolBase* p : pools_) p->reset_stats_for_test();
}

// --- registry + thread binding ------------------------------------------------

namespace {

struct Registry {
  std::mutex mu;
  std::vector<ShardPools*> shards;  // leaked instances, indexed by id
  std::vector<bool> in_use;         // id currently bound to a live thread
};

Registry& registry() {
  static auto* r = new Registry;
  return *r;
}

// Trivially destructible TLS: readable even during static destruction,
// after the Binder below has run.
thread_local ShardPools* t_shard = nullptr;
thread_local bool t_tls_dead = false;

ShardPools& orphan_pools() {
  static auto* o = new ShardPools(-1);
  return *o;
}

ShardPools* acquire_id(int preferred) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  int id = -1;
  if (preferred >= 0) {
    if (preferred >= static_cast<int>(r.shards.size())) {
      r.shards.resize(static_cast<std::size_t>(preferred) + 1, nullptr);
      r.in_use.resize(static_cast<std::size_t>(preferred) + 1, false);
    }
    if (!r.in_use[static_cast<std::size_t>(preferred)]) id = preferred;
  }
  if (id < 0) {
    for (std::size_t i = 0; i < r.shards.size(); ++i) {
      if (!r.in_use[i]) {
        id = static_cast<int>(i);
        break;
      }
    }
  }
  if (id < 0) {
    id = static_cast<int>(r.shards.size());
    r.shards.push_back(nullptr);
    r.in_use.push_back(false);
  }
  if (r.shards[static_cast<std::size_t>(id)] == nullptr) {
    r.shards[static_cast<std::size_t>(id)] = new ShardPools(id);  // leaked, reused
  }
  r.in_use[static_cast<std::size_t>(id)] = true;
  return r.shards[static_cast<std::size_t>(id)];
}

void release_id(ShardPools* sp) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.in_use[static_cast<std::size_t>(sp->id())] = false;
}

// Per-thread binding holder. Destruction order on thread exit: drains the
// shard's channels one last time, releases the id for reuse, and marks the
// TLS slot dead so later pool use (static destruction) takes the orphan.
struct Binder {
  ShardPools* pools = nullptr;
  ~Binder() {
    if (pools != nullptr) {
      pools->drain_remote();
      release_id(pools);
    }
    t_shard = nullptr;
    t_tls_dead = true;
  }
};

}  // namespace

void bind_shard(int preferred_id) {
  if (t_tls_dead) return;  // too late to bind; orphan serves this thread
  static thread_local Binder binder;
  if (binder.pools != nullptr) {
    if (preferred_id < 0 || binder.pools->id() == preferred_id) {
      t_shard = binder.pools;
      return;
    }
    // Rebind to a specific id: hand the old instance back first.
    binder.pools->drain_remote();
    release_id(binder.pools);
    binder.pools = nullptr;
    t_shard = nullptr;
  }
  binder.pools = acquire_id(preferred_id);
  t_shard = binder.pools;
}

ShardPools& shard() {
  if (t_shard != nullptr) return *t_shard;
  if (t_tls_dead) return orphan_pools();
  bind_shard(-1);
  return *t_shard;
}

ShardPools* shard_if_bound() noexcept { return t_shard; }

const void* current_owner_token() noexcept { return t_shard; }

SlabPool& current_slab() { return shard().slab(); }

void drain_remote_frees() {
  if (t_shard != nullptr) t_shard->drain_remote();
}

void reset_for_test() {
  ShardPools& sp = shard();
  sp.drain_remote();
  sp.purge_free();
  sp.reset_stats_for_test();
  ShardPools& orphan = orphan_pools();
  orphan.drain_remote();
  orphan.purge_free();
  orphan.reset_stats_for_test();
}

SlabPool& slab_pool() { return shard().slab(); }
BufferPool& buffer_pool() { return shard().buffers(); }

}  // namespace asp::mem
