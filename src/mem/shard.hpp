// Shard registry: binds one ShardPools instance (a full set of memory pools
// — slab, buffers, and every slot-registered pool) to each executor shard's
// thread, so the steady-state alloc/free path is single-threaded by
// construction (DESIGN.md §6e).
//
// Binding model:
//   * `bind_shard(k)` pins the calling thread to pool set `k` —
//     ParallelExecutor workers call it with their shard index at thread
//     start; the coordinator/serial thread lazily binds on first pool use
//     (it gets shard 0 because it touches pools first).
//   * Instances are leaked and indexed by id in a registry; when a thread
//     exits, its final remote frees are drained and the id returns to a
//     free list, so the NEXT bound thread reuses the same warmed instance
//     (and its registered metric names stay unique).
//   * After a thread's binding is torn down (static destruction order),
//     pool use falls back to the locked ORPHAN instance; every such
//     operation counts in `spills`, which steady-state benches assert == 0.
//
// Slots: subsystems own pool flavors the mem layer must not know about
// (planp's VecPool<Value>, net's BoxPool<Packet>). They register a factory
// once (process-wide, returns a slot id) and fetch `shard().slot(id)` —
// each shard builds its own instance lazily, names it
// "mem/<label>/<subsystem>", and wires it into the shard's barrier drain.
#pragma once

#include <string>
#include <vector>

#include "mem/pool.hpp"

namespace asp::mem {

/// One shard's full set of pools. Owner-thread-only except where noted;
/// the orphan instance (id < 0) locks every owner-side operation instead.
class ShardPools {
 public:
  static constexpr int kMaxSlots = 8;
  /// Builds a subsystem pool for `sp`, registered once per process. The
  /// returned pool is owned by `sp` (leaked with it) and joins its
  /// drain/purge/reset sweeps.
  using SlotFactory = PoolBase* (*)(ShardPools&);

  /// id >= 0: a shard instance labeled "shard<id>"; id < 0: the orphan
  /// instance ("orphan"), which locks and counts spills.
  explicit ShardPools(int id);
  ShardPools(const ShardPools&) = delete;
  ShardPools& operator=(const ShardPools&) = delete;

  int id() const { return id_; }
  const std::string& label() const { return label_; }
  bool locked() const { return locked_; }
  /// Free-path routing token: matches current_owner_token() exactly when
  /// the calling thread owns this instance. nullptr for the orphan, so
  /// orphan frees always route through the remote channel.
  const void* token() const { return locked_ ? nullptr : this; }

  SlabPool& slab() { return slab_; }
  BufferPool& buffers() { return buffers_; }

  static int register_slot(SlotFactory f);
  /// The shard's instance for slot `s`, built on first use.
  PoolBase* slot(int s);

  /// Barrier drain: reclaims every pool's remote-free channel.
  void drain_remote();
  /// Test hooks — see mem::reset_for_test().
  void purge_free();
  void reset_stats_for_test();

 private:
  const int id_;
  const bool locked_;
  const std::string label_;
  SlabPool slab_;
  BufferPool buffers_;
  PoolBase* slots_[kMaxSlots] = {};
  std::vector<PoolBase*> pools_;  // slab_, buffers_, then built slots
};

/// The calling thread's pool set, lazily binding the lowest free shard id
/// (the serial/coordinator thread gets shard 0). Falls back to the orphan
/// instance once the thread's binding has been torn down.
ShardPools& shard();

/// The calling thread's pool set if bound, else nullptr (never the orphan).
ShardPools* shard_if_bound() noexcept;

/// Pins the calling thread to pool set `preferred_id` (creating it if
/// needed; if that id is owned by another thread, the lowest free id is
/// used instead). Executor workers call this with their shard index so
/// pool instances line up 1:1 with executor shards.
void bind_shard(int preferred_id);

/// Barrier hook: drains every remote-free channel of the calling thread's
/// shard. No-op on unbound threads. net/exec.cpp calls this after each
/// shard window.
void drain_remote_frees();

/// Test hook: drains, purges every freelist, and zeroes every stat counter
/// (except `live`) of the calling thread's shard AND the orphan instance,
/// so pool-stat assertions see a deterministic baseline regardless of which
/// tests ran earlier in the binary. Other shards' instances are owned by
/// other threads and are left alone.
void reset_for_test();

// Compatibility accessors for the calling shard's core pools.
SlabPool& slab_pool();
BufferPool& buffer_pool();

}  // namespace asp::mem
