// SmallFn: a move-only std::function<void()> replacement with a 64-byte
// inline buffer.
//
// Why not std::function: libstdc++'s small-object optimization only applies
// to trivially-copyable targets of <= 16 bytes, so every event callback that
// captures a shared_ptr — let alone a whole Packet — heap-allocates at
// schedule time. The event queue is on the per-packet path, so EventQueue
// stores SmallFn<64> instead: any capture up to 64 bytes (a this-pointer,
// two shared_ptrs, and a pooled box handle fit comfortably) lives inline in
// the queue entry. Larger captures still work via a counted heap fallback
// (mem::note_heap_capture), which bench_fastpath surfaces so an oversized
// capture is a visible regression, not a silent slowdown.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "mem/pool.hpp"

namespace asp::mem {

template <std::size_t N = 64>
class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = N;

  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT: converting, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "SmallFn target must be callable as void()");
    if constexpr (sizeof(Fn) <= N && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      // Oversized (or throwing-move) capture: box it on the heap and count
      // it — the fast path should never take this branch.
      note_heap_capture(sizeof(Fn));
      heap_ = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& o) noexcept { move_from(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(this); }

  /// True when the target lives in the inline buffer (test hook).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(SmallFn*);
    void (*move)(SmallFn* dst, SmallFn* src) noexcept;
    void (*destroy)(SmallFn*) noexcept;
    bool inline_storage;
  };

  template <typename Fn>
  static const Ops inline_ops;
  template <typename Fn>
  static const Ops heap_ops;

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(this);
      ops_ = nullptr;
    }
  }

  void move_from(SmallFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->move(this, &o);
      o.ops_ = nullptr;
    }
  }

  template <typename Fn>
  Fn* inline_target() noexcept {
    return std::launder(reinterpret_cast<Fn*>(buf_));
  }

  const Ops* ops_ = nullptr;
  union {
    alignas(std::max_align_t) unsigned char buf_[N];
    void* heap_;
  };
};

template <std::size_t N>
template <typename Fn>
const typename SmallFn<N>::Ops SmallFn<N>::inline_ops = {
    /*invoke=*/[](SmallFn* s) { (*s->template inline_target<Fn>())(); },
    /*move=*/
    [](SmallFn* dst, SmallFn* src) noexcept {
      ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*src->template inline_target<Fn>()));
      src->template inline_target<Fn>()->~Fn();
    },
    /*destroy=*/[](SmallFn* s) noexcept { s->template inline_target<Fn>()->~Fn(); },
    /*inline_storage=*/true,
};

template <std::size_t N>
template <typename Fn>
const typename SmallFn<N>::Ops SmallFn<N>::heap_ops = {
    /*invoke=*/[](SmallFn* s) { (*static_cast<Fn*>(s->heap_))(); },
    /*move=*/
    [](SmallFn* dst, SmallFn* src) noexcept {
      dst->heap_ = src->heap_;
      src->heap_ = nullptr;
    },
    /*destroy=*/[](SmallFn* s) noexcept { delete static_cast<Fn*>(s->heap_); },
    /*inline_storage=*/false,
};

}  // namespace asp::mem
