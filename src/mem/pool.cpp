#include "mem/pool.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"

namespace asp::mem {

// --- attribution --------------------------------------------------------------

namespace {
thread_local AllocTag g_alloc_tag = AllocTag::kOther;
}  // namespace

AllocTag current_alloc_tag() { return g_alloc_tag; }
void set_alloc_tag(AllocTag t) { g_alloc_tag = t; }

// --- poison -------------------------------------------------------------------

namespace {
bool poison_from_env() {
  const char* v = std::getenv("ASP_MEM_POISON");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
// Atomic because shard threads read it on every recycle while a test on the
// main thread may flip it (always between runs, but TSAN can't know that).
std::atomic<bool> g_poison{poison_from_env()};
}  // namespace

bool poison_enabled() { return g_poison.load(std::memory_order_relaxed); }
void set_poison(bool on) { g_poison.store(on, std::memory_order_relaxed); }

// --- stats registry -----------------------------------------------------------

namespace {
struct StatsEntry {
  std::string name;
  const PoolStats* stats;
};
// Leaked: register_pool_stats can be called from leaked-singleton
// constructors whose order relative to this file's statics is unspecified,
// and the list must outlive every pool.
std::vector<StatsEntry>& stats_list() {
  static auto* list = new std::vector<StatsEntry>;
  return *list;
}
std::mutex& stats_list_mu() {
  static auto* mu = new std::mutex;
  return *mu;
}

obs::RelaxedU64 g_heap_captures;
obs::RelaxedU64 g_heap_capture_bytes;
}  // namespace

void register_pool_stats(const std::string& name, const PoolStats* stats) {
  std::lock_guard<std::mutex> lock(stats_list_mu());
  stats_list().push_back({name, stats});
}

void publish_metrics() {
  auto& reg = obs::registry();
  std::lock_guard<std::mutex> lock(stats_list_mu());
  for (const auto& e : stats_list()) {
    reg.gauge(e.name + "/hits").set(static_cast<double>(e.stats->hits.load()));
    reg.gauge(e.name + "/misses").set(static_cast<double>(e.stats->misses.load()));
    reg.gauge(e.name + "/recycled").set(static_cast<double>(e.stats->recycled.load()));
    reg.gauge(e.name + "/recycled_bytes")
        .set(static_cast<double>(e.stats->recycled_bytes.load()));
    reg.gauge(e.name + "/live").set(static_cast<double>(e.stats->live.load()));
  }
  reg.gauge("mem/event/heap_captures").set(static_cast<double>(g_heap_captures.load()));
  reg.gauge("mem/event/heap_capture_bytes")
      .set(static_cast<double>(g_heap_capture_bytes.load()));
}

void note_heap_capture(std::size_t bytes) {
  ++g_heap_captures;
  g_heap_capture_bytes += bytes;
}

std::uint64_t heap_capture_count() { return g_heap_captures.load(); }

// --- slab pool ----------------------------------------------------------------

// Per-thread magazines: intrusive per-class stacks, same first-word links as
// the shared freelists, so blocks move between the two with pointer writes.
struct SlabPool::ThreadCache {
  SlabPool* owner = nullptr;
  void* head[kClasses] = {};
  int count[kClasses] = {};
};

thread_local SlabPool::ThreadCache* SlabPool::tls_ = nullptr;

SlabPool::ThreadCache* SlabPool::thread_cache(bool create) {
  ThreadCache* tc = tls_;
  if (tc != nullptr) return tc->owner == this ? tc : nullptr;
  if (!create) return nullptr;
  struct Holder {
    ThreadCache cache;
    ~Holder() {
      // Spill the magazine back to the shared slab and null the trivially
      // destructible slot, so post-exit deallocations take the locked path
      // instead of touching a dead cache.
      if (cache.owner != nullptr) cache.owner->spill_all(cache);
      tls_ = nullptr;
    }
  };
  static thread_local Holder holder;
  if (holder.cache.owner != nullptr && holder.cache.owner != this) {
    return nullptr;  // a non-singleton instance lost the race for this thread
  }
  holder.cache.owner = this;
  tls_ = &holder.cache;
  return &holder.cache;
}

void SlabPool::spill_class(ThreadCache& tc, int c, int keep) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  while (tc.count[c] > keep) {
    void* p = tc.head[c];
    tc.head[c] = *static_cast<void**>(p);
    --tc.count[c];
    *static_cast<void**>(p) = free_[c];
    free_[c] = p;
  }
}

void SlabPool::spill_all(ThreadCache& tc) noexcept {
  for (int c = 0; c < kClasses; ++c) {
    if (tc.count[c] > 0) spill_class(tc, c, 0);
  }
}

void* SlabPool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxBlock) {
    ++stats_.misses;
    ++stats_.live;
    return ::operator new(bytes);
  }
  const int c = class_of(bytes);
  ThreadCache* tc = thread_cache(true);
  if (tc != nullptr && tc->head[c] != nullptr) {
    void* p = tc->head[c];
    tc->head[c] = *static_cast<void**>(p);
    --tc->count[c];
    ++stats_.hits;
    ++stats_.live;
    return p;
  }
  return allocate_slow(c, tc);
}

void* SlabPool::allocate_slow(int c, ThreadCache* tc) {
  const std::size_t block = static_cast<std::size_t>(c + 1) * kAlign;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (void* p = free_[c]) {
      // Serve from the shared slab and pull half a magazine with it.
      free_[c] = *static_cast<void**>(p);
      if (tc != nullptr) {
        for (int i = 0; i < kMagazine / 2 && free_[c] != nullptr; ++i) {
          void* q = free_[c];
          free_[c] = *static_cast<void**>(q);
          *static_cast<void**>(q) = tc->head[c];
          tc->head[c] = q;
          ++tc->count[c];
        }
      }
      ++stats_.hits;
      ++stats_.live;
      return p;
    }
  }
  // Refill the class with a chunk; blocks in a chunk are never individually
  // freed to the OS, only threaded back onto a freelist. The surplus blocks
  // charge this thread's magazine (the shared slab when cacheless).
  auto* chunk = static_cast<std::uint8_t*>(::operator new(block * kChunkBlocks));
  ++stats_.misses;
  if (tc != nullptr) {
    for (int i = 1; i < kChunkBlocks; ++i) {
      void* b = chunk + static_cast<std::size_t>(i) * block;
      *static_cast<void**>(b) = tc->head[c];
      tc->head[c] = b;
      ++tc->count[c];
    }
    if (tc->count[c] > kMagazine) spill_class(*tc, c, kMagazine / 2);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 1; i < kChunkBlocks; ++i) {
      void* b = chunk + static_cast<std::size_t>(i) * block;
      *static_cast<void**>(b) = free_[c];
      free_[c] = b;
    }
  }
  ++stats_.live;
  return chunk;
}

void SlabPool::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  --stats_.live;
  if (bytes > kMaxBlock) {
    ::operator delete(p);
    return;
  }
  ++stats_.recycled;
  const int c = class_of(bytes);
  if (poison_enabled()) {
    const std::size_t block = static_cast<std::size_t>(c + 1) * kAlign;
    std::memset(p, kPoisonByte, block);
  }
  // Never *create* a cache on the free path (deleters can run during static
  // destruction or on threads that only release).
  if (ThreadCache* tc = thread_cache(false)) {
    *static_cast<void**>(p) = tc->head[c];
    tc->head[c] = p;
    if (++tc->count[c] > kMagazine) spill_class(*tc, c, kMagazine / 2);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  *static_cast<void**>(p) = free_[c];
  free_[c] = p;
}

SlabPool& slab_pool() {
  static auto* pool = [] {
    auto* p = new SlabPool;
    register_pool_stats("mem/slab", &p->stats());
    return p;
  }();
  return *pool;
}

// --- buffer pool --------------------------------------------------------------

struct BufferPool::ThreadCache {
  BufferPool* owner = nullptr;
  std::vector<Node*> items[kClasses];
};

thread_local BufferPool::ThreadCache* BufferPool::tls_ = nullptr;

BufferPool::ThreadCache* BufferPool::thread_cache(bool create) {
  ThreadCache* tc = tls_;
  if (tc != nullptr) return tc->owner == this ? tc : nullptr;
  if (!create) return nullptr;
  struct Holder {
    ThreadCache cache;
    ~Holder() {
      if (cache.owner != nullptr) cache.owner->spill_all(cache);
      tls_ = nullptr;
    }
  };
  static thread_local Holder holder;
  if (holder.cache.owner != nullptr && holder.cache.owner != this) {
    return nullptr;
  }
  holder.cache.owner = this;
  tls_ = &holder.cache;
  return &holder.cache;
}

void BufferPool::spill_class(ThreadCache& tc, int c, std::size_t keep) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  while (tc.items[c].size() > keep) {
    free_[c].push_back(tc.items[c].back());
    tc.items[c].pop_back();
  }
}

void BufferPool::spill_all(ThreadCache& tc) noexcept {
  for (int c = 0; c < kClasses; ++c) {
    if (!tc.items[c].empty()) spill_class(tc, c, 0);
  }
}

int BufferPool::class_for_request(std::size_t n) {
  std::size_t cap = kBaseCapacity;
  for (int c = 0; c < kClasses; ++c, cap *= 2) {
    if (n <= cap) return c;
  }
  return kClasses;  // oversized: pooled node, unclassed capacity
}

int BufferPool::class_for_capacity(std::size_t n) {
  if (n < kBaseCapacity) return -1;  // too small to guarantee any class
  std::size_t cap = kBaseCapacity;
  int fit = 0;
  for (int c = 1; c < kClasses; ++c) {
    cap *= 2;
    if (cap > n) break;
    fit = c;
  }
  return fit;
}

BufferPool::Handle BufferPool::wrap(Node* n) {
  ++stats_.live;
  // Deleter + slab-backed control block: steady-state acquire/release does
  // not touch operator new.
  return Handle(&n->bytes, Recycler{this}, SlabAllocator<Bytes>{});
}

BufferPool::Handle BufferPool::acquire(std::size_t capacity_hint) {
  ScopedAllocTag tag(AllocTag::kBuffer);
  const int c = class_for_request(capacity_hint);
  ThreadCache* tc = thread_cache(true);
  if (c < kClasses) {
    if (tc != nullptr && !tc->items[c].empty()) {
      Node* n = tc->items[c].back();
      tc->items[c].pop_back();
      ++stats_.hits;
      return wrap(n);
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (!free_[c].empty()) {
      Node* n = free_[c].back();
      free_[c].pop_back();
      if (tc != nullptr) {  // pull half a magazine while we hold the lock
        std::size_t batch = std::min(free_[c].size(),
                                     static_cast<std::size_t>(kMagazine) / 2);
        for (std::size_t i = 0; i < batch; ++i) {
          tc->items[c].push_back(free_[c].back());
          free_[c].pop_back();
        }
      }
      lock.unlock();
      ++stats_.hits;
      return wrap(n);
    }
  }
  ++stats_.misses;
  auto* n = new Node;
  std::size_t cap = kBaseCapacity;
  for (int i = 0; i < c && i < kClasses; ++i) cap *= 2;
  n->bytes.reserve(std::max(capacity_hint, cap));
  return wrap(n);
}

BufferPool::Handle BufferPool::adopt(Bytes&& bytes) {
  ScopedAllocTag tag(AllocTag::kBuffer);
  Node* n = nullptr;
  // Reuse a freelist node header if one is idle in the smallest class; its
  // old storage is replaced by the adopted storage via move-assign. This
  // thread's magazine is searched first, then the shared slab.
  if (ThreadCache* tc = thread_cache(true)) {
    for (int c = 0; c < kClasses && n == nullptr; ++c) {
      if (!tc->items[c].empty()) {
        n = tc->items[c].back();
        tc->items[c].pop_back();
      }
    }
  }
  if (n == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    for (int c = 0; c < kClasses; ++c) {
      if (!free_[c].empty()) {
        n = free_[c].back();
        free_[c].pop_back();
        break;
      }
    }
  }
  if (n != nullptr) {
    n->bytes = std::move(bytes);
    ++stats_.hits;
  } else {
    ++stats_.misses;
    n = new Node;
    n->bytes = std::move(bytes);
  }
  return wrap(n);
}

void BufferPool::recycle(Bytes* b) noexcept {
  --stats_.live;
  ++stats_.recycled;
  stats_.recycled_bytes += b->capacity();
  if (poison_enabled() && !b->empty()) {
    std::memset(b->data(), kPoisonByte, b->size());
  }
  b->clear();
  int c = class_for_capacity(b->capacity());
  // Node is standard-layout with bytes as its only member.
  Node* n = reinterpret_cast<Node*>(b);
  if (c < 0) {
    // Tiny capacity: keep the node, drop the guarantee by parking it in
    // class 0 after reserving the base capacity (still amortized: happens
    // once per node).
    b->reserve(kBaseCapacity);
    c = 0;
  }
  // Never *create* a cache on the free path (cross-shard releases during
  // static destruction).
  if (ThreadCache* tc = thread_cache(false)) {
    tc->items[c].push_back(n);
    if (tc->items[c].size() > static_cast<std::size_t>(kMagazine)) {
      spill_class(*tc, c, static_cast<std::size_t>(kMagazine) / 2);
    }
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  free_[c].push_back(n);
}

BufferPool& buffer_pool() {
  static auto* pool = [] {
    auto* p = new BufferPool;
    register_pool_stats("mem/buffer", &p->stats());
    return p;
  }();
  return *pool;
}

}  // namespace asp::mem
