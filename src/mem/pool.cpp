#include "mem/pool.hpp"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"

namespace asp::mem {

// --- attribution --------------------------------------------------------------

namespace {
thread_local AllocTag g_alloc_tag = AllocTag::kOther;
}  // namespace

AllocTag current_alloc_tag() { return g_alloc_tag; }
void set_alloc_tag(AllocTag t) { g_alloc_tag = t; }

// --- poison -------------------------------------------------------------------

namespace {
bool poison_from_env() {
  const char* v = std::getenv("ASP_MEM_POISON");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
bool g_poison = poison_from_env();
}  // namespace

bool poison_enabled() { return g_poison; }
void set_poison(bool on) { g_poison = on; }

// --- stats registry -----------------------------------------------------------

namespace {
struct StatsEntry {
  std::string name;
  const PoolStats* stats;
};
// Leaked: register_pool_stats can be called from leaked-singleton
// constructors whose order relative to this file's statics is unspecified,
// and the list must outlive every pool.
std::vector<StatsEntry>& stats_list() {
  static auto* list = new std::vector<StatsEntry>;
  return *list;
}

std::uint64_t g_heap_captures = 0;
std::uint64_t g_heap_capture_bytes = 0;
}  // namespace

void register_pool_stats(const std::string& name, const PoolStats* stats) {
  stats_list().push_back({name, stats});
}

void publish_metrics() {
  auto& reg = obs::registry();
  for (const auto& e : stats_list()) {
    reg.gauge(e.name + "/hits").set(static_cast<double>(e.stats->hits));
    reg.gauge(e.name + "/misses").set(static_cast<double>(e.stats->misses));
    reg.gauge(e.name + "/recycled").set(static_cast<double>(e.stats->recycled));
    reg.gauge(e.name + "/recycled_bytes")
        .set(static_cast<double>(e.stats->recycled_bytes));
    reg.gauge(e.name + "/live").set(static_cast<double>(e.stats->live));
  }
  reg.gauge("mem/event/heap_captures").set(static_cast<double>(g_heap_captures));
  reg.gauge("mem/event/heap_capture_bytes")
      .set(static_cast<double>(g_heap_capture_bytes));
}

void note_heap_capture(std::size_t bytes) {
  ++g_heap_captures;
  g_heap_capture_bytes += bytes;
}

std::uint64_t heap_capture_count() { return g_heap_captures; }

// --- slab pool ----------------------------------------------------------------

void* SlabPool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxBlock) {
    ++stats_.misses;
    ++stats_.live;
    return ::operator new(bytes);
  }
  const int c = class_of(bytes);
  if (void* p = free_[c]) {
    free_[c] = *static_cast<void**>(p);
    ++stats_.hits;
    ++stats_.live;
    return p;
  }
  // Refill the class with a chunk; blocks in a chunk are never individually
  // freed to the OS, only threaded back onto the freelist.
  const std::size_t block = static_cast<std::size_t>(c + 1) * kAlign;
  auto* chunk = static_cast<std::uint8_t*>(::operator new(block * kChunkBlocks));
  ++stats_.misses;
  for (int i = 1; i < kChunkBlocks; ++i) {
    void* b = chunk + static_cast<std::size_t>(i) * block;
    *static_cast<void**>(b) = free_[c];
    free_[c] = b;
  }
  ++stats_.live;
  return chunk;
}

void SlabPool::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  --stats_.live;
  if (bytes > kMaxBlock) {
    ::operator delete(p);
    return;
  }
  ++stats_.recycled;
  const int c = class_of(bytes);
  if (g_poison) {
    const std::size_t block = static_cast<std::size_t>(c + 1) * kAlign;
    std::memset(p, kPoisonByte, block);
  }
  *static_cast<void**>(p) = free_[c];
  free_[c] = p;
}

SlabPool& slab_pool() {
  static auto* pool = [] {
    auto* p = new SlabPool;
    register_pool_stats("mem/slab", &p->stats());
    return p;
  }();
  return *pool;
}

// --- buffer pool --------------------------------------------------------------

int BufferPool::class_for_request(std::size_t n) {
  std::size_t cap = kBaseCapacity;
  for (int c = 0; c < kClasses; ++c, cap *= 2) {
    if (n <= cap) return c;
  }
  return kClasses;  // oversized: pooled node, unclassed capacity
}

int BufferPool::class_for_capacity(std::size_t n) {
  if (n < kBaseCapacity) return -1;  // too small to guarantee any class
  std::size_t cap = kBaseCapacity;
  int fit = 0;
  for (int c = 1; c < kClasses; ++c) {
    cap *= 2;
    if (cap > n) break;
    fit = c;
  }
  return fit;
}

BufferPool::Handle BufferPool::wrap(Node* n) {
  ++stats_.live;
  // Deleter + slab-backed control block: steady-state acquire/release does
  // not touch operator new.
  return Handle(&n->bytes, Recycler{this}, SlabAllocator<Bytes>{});
}

BufferPool::Handle BufferPool::acquire(std::size_t capacity_hint) {
  ScopedAllocTag tag(AllocTag::kBuffer);
  const int c = class_for_request(capacity_hint);
  if (c < kClasses && !free_[c].empty()) {
    Node* n = free_[c].back();
    free_[c].pop_back();
    ++stats_.hits;
    return wrap(n);
  }
  ++stats_.misses;
  auto* n = new Node;
  std::size_t cap = kBaseCapacity;
  for (int i = 0; i < c && i < kClasses; ++i) cap *= 2;
  n->bytes.reserve(std::max(capacity_hint, cap));
  return wrap(n);
}

BufferPool::Handle BufferPool::adopt(Bytes&& bytes) {
  ScopedAllocTag tag(AllocTag::kBuffer);
  Node* n;
  // Reuse a freelist node header if one is idle in the smallest class; its
  // old storage is replaced by the adopted storage via move-assign.
  int donor = -1;
  for (int c = 0; c < kClasses; ++c) {
    if (!free_[c].empty()) {
      donor = c;
      break;
    }
  }
  if (donor >= 0) {
    n = free_[donor].back();
    free_[donor].pop_back();
    n->bytes = std::move(bytes);
    ++stats_.hits;
  } else {
    ++stats_.misses;
    n = new Node;
    n->bytes = std::move(bytes);
  }
  return wrap(n);
}

void BufferPool::recycle(Bytes* b) noexcept {
  --stats_.live;
  ++stats_.recycled;
  stats_.recycled_bytes += b->capacity();
  if (g_poison && !b->empty()) {
    std::memset(b->data(), kPoisonByte, b->size());
  }
  b->clear();
  const int c = class_for_capacity(b->capacity());
  // Node is standard-layout with bytes as its only member.
  Node* n = reinterpret_cast<Node*>(b);
  if (c < 0) {
    // Tiny capacity: keep the node, drop the guarantee by parking it in
    // class 0 after reserving the base capacity (still amortized: happens
    // once per node).
    b->reserve(kBaseCapacity);
    free_[0].push_back(n);
    return;
  }
  free_[c].push_back(n);
}

BufferPool& buffer_pool() {
  static auto* pool = [] {
    auto* p = new BufferPool;
    register_pool_stats("mem/buffer", &p->stats());
    return p;
  }();
  return *pool;
}

}  // namespace asp::mem
