#include "mem/pool.hpp"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"

namespace asp::mem {

// --- attribution --------------------------------------------------------------

namespace {
thread_local AllocTag g_alloc_tag = AllocTag::kOther;
}  // namespace

AllocTag current_alloc_tag() { return g_alloc_tag; }
void set_alloc_tag(AllocTag t) { g_alloc_tag = t; }

// --- poison -------------------------------------------------------------------

namespace {
bool poison_from_env() {
  const char* v = std::getenv("ASP_MEM_POISON");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}
// Atomic because shard threads read it on every recycle while a test on the
// main thread may flip it (always between runs, but TSAN can't know that).
std::atomic<bool> g_poison{poison_from_env()};
}  // namespace

bool poison_enabled() { return g_poison.load(std::memory_order_relaxed); }
void set_poison(bool on) { g_poison.store(on, std::memory_order_relaxed); }

// --- stats registry -----------------------------------------------------------

namespace {
struct StatsEntry {
  std::string name;
  const PoolStats* stats;
};
// Leaked: register_pool_stats can be called from leaked shard-pool
// constructors whose order relative to this file's statics is unspecified,
// and the list must outlive every pool.
std::vector<StatsEntry>& stats_list() {
  static auto* list = new std::vector<StatsEntry>;
  return *list;
}
std::mutex& stats_list_mu() {
  static auto* mu = new std::mutex;
  return *mu;
}

obs::RelaxedU64 g_heap_captures;
obs::RelaxedU64 g_heap_capture_bytes;
obs::RelaxedU64 g_event_slab_chunks;
obs::RelaxedU64 g_event_slab_bytes;
}  // namespace

void register_pool_stats(const std::string& name, const PoolStats* stats) {
  std::lock_guard<std::mutex> lock(stats_list_mu());
  stats_list().push_back({name, stats});
}

void publish_metrics() {
  auto& reg = obs::registry();
  std::lock_guard<std::mutex> lock(stats_list_mu());
  for (const auto& e : stats_list()) {
    reg.gauge(e.name + "/hits").set(static_cast<double>(e.stats->hits.load()));
    reg.gauge(e.name + "/misses").set(static_cast<double>(e.stats->misses.load()));
    reg.gauge(e.name + "/recycled").set(static_cast<double>(e.stats->recycled.load()));
    reg.gauge(e.name + "/recycled_bytes")
        .set(static_cast<double>(e.stats->recycled_bytes.load()));
    reg.gauge(e.name + "/live").set(static_cast<double>(e.stats->live.load()));
    reg.gauge(e.name + "/remote_freed")
        .set(static_cast<double>(e.stats->remote_freed.load()));
    reg.gauge(e.name + "/remote_drained")
        .set(static_cast<double>(e.stats->remote_drained.load()));
    reg.gauge(e.name + "/spills").set(static_cast<double>(e.stats->spills.load()));
  }
  reg.gauge("mem/event/heap_captures").set(static_cast<double>(g_heap_captures.load()));
  reg.gauge("mem/event/heap_capture_bytes")
      .set(static_cast<double>(g_heap_capture_bytes.load()));
  reg.gauge("mem/event/slab_chunks")
      .set(static_cast<double>(g_event_slab_chunks.load()));
  reg.gauge("mem/event/slab_bytes")
      .set(static_cast<double>(g_event_slab_bytes.load()));
}

PoolTotals total_pool_stats() {
  PoolTotals t;
  std::lock_guard<std::mutex> lock(stats_list_mu());
  for (const auto& e : stats_list()) {
    t.hits += e.stats->hits.load();
    t.misses += e.stats->misses.load();
    t.recycled += e.stats->recycled.load();
    t.live += e.stats->live.load();
    t.remote_freed += e.stats->remote_freed.load();
    t.remote_drained += e.stats->remote_drained.load();
    t.spills += e.stats->spills.load();
  }
  return t;
}

void note_heap_capture(std::size_t bytes) {
  ++g_heap_captures;
  g_heap_capture_bytes += bytes;
}

std::uint64_t heap_capture_count() { return g_heap_captures.load(); }

void note_event_slab_chunk(std::size_t bytes) {
  ++g_event_slab_chunks;
  g_event_slab_bytes += bytes;
}

std::uint64_t event_slab_chunk_count() { return g_event_slab_chunks.load(); }

// --- slab pool ----------------------------------------------------------------

SlabPool::SlabPool(const std::string& name, const void* owner_token, bool locked)
    : owner_token_(owner_token), locked_(locked) {
  register_pool_stats(name, &stats_);
}

SlabPool::~SlabPool() { purge_free(); }

void* SlabPool::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxBlock) {
    // Oversized requests bypass the chunks entirely; freed by size check in
    // deallocate() before any chunk masking.
    ++stats_.misses;
    ++stats_.live;
    return ::operator new(bytes);
  }
  MaybeLock lk(lock_if());
  if (locked_) ++stats_.spills;
  const int c = class_of(bytes);
  ClassDir& d = dirs_[c];
  std::int32_t ci = d.avail.find_first();
  if (ci < 0) {
    // Local freelists dry: reclaim cross-shard frees before growing.
    drain_remote_unlocked();
    ci = d.avail.find_first();
    if (ci < 0) return refill(c);
  }
  Chunk* ch = d.chunks[static_cast<std::size_t>(ci)];
  const auto b = static_cast<unsigned>(std::countr_zero(ch->free_mask));
  ch->free_mask &= ch->free_mask - 1;  // clear lowest set bit
  if (ch->free_mask == 0) d.avail.clear(static_cast<std::uint32_t>(ci));
  ++stats_.hits;
  ++stats_.live;
  return ch->base() + b * block_size(c);
}

void* SlabPool::refill(int c) {
  const std::size_t bs = block_size(c);
  void* raw =
      ::operator new(kBlockOffset + kChunkBlocks * bs, std::align_val_t{kChunkAlign});
  auto* ch = new (raw) Chunk;
  ch->home = this;
  ch->cls = static_cast<std::uint32_t>(c);
  ch->dir_index = static_cast<std::uint32_t>(dirs_[c].chunks.size());
  ch->free_mask = ~std::uint64_t{1};  // block 0 is handed out right away
  dirs_[c].chunks.push_back(ch);
  dirs_[c].avail.set(ch->dir_index);
  ++stats_.misses;
  ++stats_.live;
  return ch->base();
}

void SlabPool::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
  if (bytes == 0) bytes = 1;
  if (bytes > kMaxBlock) {
    --stats_.live;
    ::operator delete(p);
    return;
  }
  // Route by the chunk's home pool — NOT by `this`: a handle's control block
  // is released wherever the last reference dies.
  Chunk* ch = chunk_of(p);
  SlabPool* home = ch->home;
  --home->stats_.live;
  if (home->owner_token_ != nullptr &&
      home->owner_token_ == current_owner_token()) {
    home->free_local(ch, p);
    return;
  }
  ++home->stats_.remote_freed;
  home->remote_.push(p);
}

void SlabPool::free_local(Chunk* ch, void* p) noexcept {
  const std::size_t bs = block_size(static_cast<int>(ch->cls));
  if (poison_enabled()) std::memset(p, kPoisonByte, bs);
  const auto b =
      static_cast<unsigned>((static_cast<std::uint8_t*>(p) - ch->base()) / bs);
  if (ch->free_mask == 0) dirs_[ch->cls].avail.set(ch->dir_index);
  ch->free_mask |= std::uint64_t{1} << b;
  ++stats_.recycled;
}

void SlabPool::drain_remote() {
  MaybeLock lk(lock_if());
  drain_remote_unlocked();
}

void SlabPool::drain_remote_unlocked() noexcept {
  void* p = remote_.take_all();
  while (p != nullptr) {
    void* next = *static_cast<void**>(p);  // read the link before poison scribbles it
    ++stats_.remote_drained;
    free_local(chunk_of(p), p);
    p = next;
  }
}

void SlabPool::purge_free() {
  MaybeLock lk(lock_if());
  drain_remote_unlocked();
  for (auto& d : dirs_) {
    std::vector<Chunk*> keep;
    keep.reserve(d.chunks.size());
    for (Chunk* ch : d.chunks) {
      if (ch->free_mask == ~std::uint64_t{0}) {
        ch->~Chunk();
        ::operator delete(ch, std::align_val_t{kChunkAlign});
      } else {
        keep.push_back(ch);  // has live blocks; must survive
      }
    }
    d.chunks = std::move(keep);
    d.avail = Binmap{};
    for (std::size_t i = 0; i < d.chunks.size(); ++i) {
      d.chunks[i]->dir_index = static_cast<std::uint32_t>(i);
      if (d.chunks[i]->free_mask != 0) d.avail.set(static_cast<std::uint32_t>(i));
    }
  }
}

// --- buffer pool --------------------------------------------------------------

BufferPool::BufferPool(const std::string& name, SlabPool& slab,
                       const void* owner_token, bool locked)
    : owner_token_(owner_token), locked_(locked), slab_(&slab) {
  register_pool_stats(name, &stats_);
}

BufferPool::~BufferPool() { purge_free(); }

int BufferPool::class_for_request(std::size_t n) {
  std::size_t cap = kBaseCapacity;
  for (int c = 0; c < kClasses; ++c, cap *= 2) {
    if (n <= cap) return c;
  }
  return kClasses;  // oversized: pooled node, unclassed capacity
}

int BufferPool::class_for_capacity(std::size_t n) {
  if (n < kBaseCapacity) return -1;  // too small to guarantee any class
  std::size_t cap = kBaseCapacity;
  int fit = 0;
  for (int c = 1; c < kClasses; ++c) {
    cap *= 2;
    if (cap > n) break;
    fit = c;
  }
  return fit;
}

BufferPool::Handle BufferPool::wrap(Node* n) {
  ++stats_.live;
  // Deleter + slab-backed control block: steady-state acquire/release does
  // not touch operator new.
  return Handle(&n->bytes, Recycler{}, SlabAllocator<Bytes>{*slab_});
}

BufferPool::Handle BufferPool::acquire(std::size_t capacity_hint) {
  MaybeLock lk(lock_if());
  if (locked_) ++stats_.spills;
  ScopedAllocTag tag(AllocTag::kBuffer);
  const int c = class_for_request(capacity_hint);
  if (c < kClasses) {
    if (free_[c].empty() && !remote_.empty()) drain_remote_unlocked();
    if (!free_[c].empty()) {
      Node* n = free_[c].back();
      free_[c].pop_back();
      ++stats_.hits;
      return wrap(n);
    }
  }
  ++stats_.misses;
  auto* n = new Node;
  n->home = this;
  std::size_t cap = kBaseCapacity;
  for (int i = 0; i < c && i < kClasses; ++i) cap *= 2;
  n->bytes.reserve(std::max(capacity_hint, cap));
  return wrap(n);
}

BufferPool::Handle BufferPool::adopt(Bytes&& bytes) {
  MaybeLock lk(lock_if());
  if (locked_) ++stats_.spills;
  ScopedAllocTag tag(AllocTag::kBuffer);
  // Reuse an idle freelist node header if any class has one; its old storage
  // is replaced by the adopted storage via move-assign.
  Node* n = nullptr;
  for (int pass = 0; pass < 2 && n == nullptr; ++pass) {
    for (int c = 0; c < kClasses && n == nullptr; ++c) {
      if (!free_[c].empty()) {
        n = free_[c].back();
        free_[c].pop_back();
      }
    }
    if (n == nullptr && (pass != 0 || remote_.empty())) break;
    if (n == nullptr) drain_remote_unlocked();
  }
  if (n != nullptr) {
    n->bytes = std::move(bytes);
    ++stats_.hits;
  } else {
    ++stats_.misses;
    n = new Node;
    n->home = this;
    n->bytes = std::move(bytes);
  }
  return wrap(n);
}

void BufferPool::route_free(Bytes* b) noexcept {
  // Node is standard-layout with bytes as its first member.
  Node* n = reinterpret_cast<Node*>(b);
  BufferPool* home = n->home;
  // Poison + clear on the FREEING thread: storage scrubbed while its refs
  // are provably dead, and remote-parked nodes hold no surprises.
  if (poison_enabled() && !b->empty()) {
    std::memset(b->data(), kPoisonByte, b->size());
  }
  b->clear();
  --home->stats_.live;
  if (home->owner_token_ != nullptr &&
      home->owner_token_ == current_owner_token()) {
    home->recycle_local(n);
    return;
  }
  ++home->stats_.remote_freed;
  home->remote_.push(n);
}

void BufferPool::recycle_local(Node* n) noexcept {
  ++stats_.recycled;
  stats_.recycled_bytes += n->bytes.capacity();
  int c = class_for_capacity(n->bytes.capacity());
  if (c < 0) {
    // Tiny capacity: keep the node, drop the guarantee by parking it in
    // class 0 after reserving the base capacity (still amortized: happens
    // once per node).
    ScopedAllocTag tag(AllocTag::kBuffer);
    n->bytes.reserve(kBaseCapacity);
    c = 0;
  }
  free_[c].push_back(n);
}

void BufferPool::drain_remote() {
  MaybeLock lk(lock_if());
  drain_remote_unlocked();
}

void BufferPool::drain_remote_unlocked() noexcept {
  Node* n = remote_.take_all();
  while (n != nullptr) {
    Node* next = n->remote_next;
    ++stats_.remote_drained;
    recycle_local(n);
    n = next;
  }
}

void BufferPool::purge_free() {
  MaybeLock lk(lock_if());
  drain_remote_unlocked();
  for (auto& cls : free_) {
    for (Node* n : cls) delete n;
    cls.clear();
  }
}

}  // namespace asp::mem
