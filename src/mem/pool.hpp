// Pooled-buffer & arena memory subsystem: the per-packet fast path must not
// touch the general-purpose allocator.
//
// Line-rate packet processors (P4 targets, kernel ASPs like the paper's
// Solaris module) reach "as fast as the hardware allows" by recycling every
// per-packet object through freelists sized at install time. This library
// supplies the building blocks the rest of the tree threads through its
// allocation sites:
//
//   SlabPool / SlabAllocator   size-classed raw blocks; backs the shared_ptr
//                              control blocks of pooled handles.
//   BufferPool                 recycles the byte vectors behind net::Buffer;
//                              the shared_ptr deleter returns storage (with
//                              its capacity) to a size-classed freelist when
//                              the last Payload / blob Value lets go.
//   VecPool<T>                 same discipline for std::vector<T> (PLAN-P
//                              tuple storage), keeping element capacity.
//   BoxPool<T>                 single-object boxes (in-flight Packets) so
//                              event callbacks capture one pointer instead of
//                              a 150-byte struct.
//   FrameArena<T>              per-engine, depth-indexed execution frames
//                              (locals / stack / args) reused packet to
//                              packet.
//
// Cross-cutting facilities:
//   AllocTag / ScopedAllocTag  thread-local attribution of heap allocations
//                              to a subsystem, so bench_fastpath can report
//                              allocs/packet per source (buffer / tuple /
//                              frame / event / other) instead of one
//                              aggregate.
//   poison-on-free             debug mode (ASP_MEM_POISON=1 or set_poison)
//                              that scribbles recycled memory so a
//                              use-after-recycle surfaces as loud garbage
//                              instead of silently reading stale bytes.
//
// All pools are process-lifetime leaked singletons: recycling deleters can
// run during static destruction (e.g. the shared empty payload buffer), so
// the pools they point at must never be destroyed. The simulator is
// single-threaded; none of the freelists take locks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

namespace asp::mem {

// --- allocation attribution ---------------------------------------------------

/// Which subsystem the current heap allocation (if any) belongs to. The
/// pools set this around their refill paths; bench_fastpath's replaced
/// operator new reads it to attribute every allocation.
enum class AllocTag : std::uint8_t {
  kOther = 0,
  kBuffer,  // payload / blob byte storage
  kTuple,   // PLAN-P tuple storage
  kFrame,   // interpreter / VM / JIT execution frames
  kEvent,   // event-queue callbacks (oversized captures)
  kCount,
};

AllocTag current_alloc_tag();
void set_alloc_tag(AllocTag t);

/// RAII attribution scope. Nested scopes override (innermost wins), so a
/// tuple-pool refill inside a channel body still counts as kTuple.
class ScopedAllocTag {
 public:
  explicit ScopedAllocTag(AllocTag t) : prev_(current_alloc_tag()) { set_alloc_tag(t); }
  ~ScopedAllocTag() { set_alloc_tag(prev_); }
  ScopedAllocTag(const ScopedAllocTag&) = delete;
  ScopedAllocTag& operator=(const ScopedAllocTag&) = delete;

 private:
  AllocTag prev_;
};

// --- poison-on-free -----------------------------------------------------------

/// When enabled, recycled byte storage is filled with kPoisonByte and
/// recycled Value slots with kPoisonInt before going back on a freelist, so
/// any still-live reference into recycled memory reads a loud sentinel.
/// Initialized from the ASP_MEM_POISON environment variable.
bool poison_enabled();
void set_poison(bool on);

inline constexpr std::uint8_t kPoisonByte = 0xA5;
inline constexpr std::int64_t kPoisonInt = 0x504F4953;  // "POIS"

// --- pool statistics ----------------------------------------------------------

/// Counters every pool keeps internally (plain fields, not obs instruments:
/// recycling deleters may run during static destruction, after the metrics
/// registry is gone). publish_metrics() snapshots them into obs::registry().
struct PoolStats {
  std::uint64_t hits = 0;            // acquisitions served from a freelist
  std::uint64_t misses = 0;          // acquisitions that hit operator new
  std::uint64_t recycled = 0;        // objects returned to a freelist
  std::uint64_t recycled_bytes = 0;  // capacity of recycled byte storage
  std::uint64_t live = 0;            // currently checked-out objects
};

/// Registers a pool's stats under `name` (e.g. "mem/buffer") for
/// publish_metrics(). The pointer must stay valid for the process lifetime
/// (all pools are leaked singletons, so it does).
void register_pool_stats(const std::string& name, const PoolStats* stats);

/// Copies every registered pool's counters into obs::registry() as gauges
/// (mem/<pool>/{hits,misses,recycled,recycled_bytes,live}), plus
/// mem/event/heap_captures. Benches call this right before exporting JSON.
void publish_metrics();

/// Oversized event-callback captures that fell back to the heap (see
/// SmallFn in smallfn.hpp). Kept here so pool.cpp owns all counters.
void note_heap_capture(std::size_t bytes);
std::uint64_t heap_capture_count();

// --- slab pool ----------------------------------------------------------------

/// Size-classed freelist allocator for small raw blocks (shared_ptr control
/// blocks, pooled box headers). Blocks are carved from chunked operator-new
/// refills and never returned to the OS; a free block's first word links the
/// freelist. Requests above kMaxBlock fall through to operator new.
class SlabPool {
 public:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static constexpr std::size_t kMaxBlock = 512;
  static constexpr int kChunkBlocks = 64;

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  const PoolStats& stats() const { return stats_; }

 private:
  static constexpr int kClasses = static_cast<int>(kMaxBlock / kAlign);
  static int class_of(std::size_t bytes) {
    return static_cast<int>((bytes + kAlign - 1) / kAlign) - 1;
  }

  void* free_[kClasses] = {};
  PoolStats stats_;
};

/// The process-wide slab pool (leaked singleton).
SlabPool& slab_pool();

/// std::allocator-shaped adaptor over slab_pool(), used to put shared_ptr
/// control blocks of pooled handles on freelists.
template <typename T>
struct SlabAllocator {
  using value_type = T;
  SlabAllocator() noexcept = default;
  template <typename U>
  SlabAllocator(const SlabAllocator<U>&) noexcept {}  // NOLINT: converting

  T* allocate(std::size_t n) {
    return static_cast<T*>(slab_pool().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    slab_pool().deallocate(p, n * sizeof(T));
  }
  friend bool operator==(SlabAllocator, SlabAllocator) { return true; }
  friend bool operator!=(SlabAllocator, SlabAllocator) { return false; }
};

// --- buffer pool --------------------------------------------------------------

/// Recycles the `std::vector<std::uint8_t>` storage behind net::Buffer.
/// acquire() hands out a shared vector whose deleter returns the node (with
/// its capacity intact) to a capacity-classed freelist once the last
/// reference — Payload, blob Value, or aliased packet — drops. The returned
/// shared_ptr's control block comes from the slab pool, so a steady-state
/// acquire/release cycle performs zero heap allocations.
class BufferPool {
 public:
  using Bytes = std::vector<std::uint8_t>;
  using Handle = std::shared_ptr<Bytes>;

  /// Empty vector with capacity >= `capacity_hint` (rounded to a class).
  Handle acquire(std::size_t capacity_hint);

  /// Wraps caller-built storage in a pooled handle: the vector's storage is
  /// adopted as-is (no copy); on release the node joins the freelist and the
  /// adopted capacity is recycled for future acquires.
  Handle adopt(Bytes&& bytes);

  const PoolStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kBaseCapacity = 64;
  static constexpr int kClasses = 16;  // 64 B ... 2 MiB

  struct Node {
    Bytes bytes;
  };
  struct Recycler {
    BufferPool* pool;
    void operator()(Bytes* b) const noexcept { pool->recycle(b); }
  };

  // Smallest class whose guaranteed capacity covers `n` (for acquire).
  static int class_for_request(std::size_t n);
  // Largest class whose guaranteed capacity is <= `n` (for recycling).
  static int class_for_capacity(std::size_t n);

  Handle wrap(Node* n);
  void recycle(Bytes* b) noexcept;

  std::vector<Node*> free_[kClasses];
  PoolStats stats_;
};

/// The process-wide buffer pool (leaked singleton).
BufferPool& buffer_pool();

// --- generic vector pool ------------------------------------------------------

/// BufferPool's discipline for std::vector<T>: pooled shared vectors whose
/// element capacity survives recycling. Used for PLAN-P tuple storage
/// (VecPool<Value>), where the per-packet decode tuples dominate.
///
/// PoisonFill is a customization point invoked on recycle when poison mode
/// is on (before the vector is cleared), so stale references into recycled
/// tuple storage read sentinels. The default does nothing.
template <typename T>
struct NoPoison {
  void operator()(std::vector<T>&) const {}
};

template <typename T, typename PoisonFill = NoPoison<T>>
class VecPool {
 public:
  using Vec = std::vector<T>;
  using Handle = std::shared_ptr<Vec>;

  VecPool(std::string name, AllocTag tag) : tag_(tag) {
    register_pool_stats(name, &stats_);
  }
  VecPool(const VecPool&) = delete;
  VecPool& operator=(const VecPool&) = delete;

  /// Empty vector, capacity from its previous life. `reserve_hint` is
  /// honored on the (counted) miss path so steady-state pushes never grow.
  Handle acquire(std::size_t reserve_hint) {
    Node* n;
    if (!free_.empty()) {
      n = free_.back();
      free_.pop_back();
      ++stats_.hits;
      if (n->vec.capacity() < reserve_hint) {
        ScopedAllocTag tag(tag_);
        n->vec.reserve(reserve_hint);
      }
    } else {
      ScopedAllocTag tag(tag_);
      ++stats_.misses;
      n = new Node;
      n->vec.reserve(reserve_hint);
    }
    ++stats_.live;
    return Handle(&n->vec, Recycler{this}, SlabAllocator<Vec>{});
  }

  const PoolStats& stats() const { return stats_; }

 private:
  struct Node {
    Vec vec;
  };
  struct Recycler {
    VecPool* pool;
    void operator()(Vec* v) const noexcept { pool->recycle(v); }
  };

  void recycle(Vec* v) noexcept {
    if (poison_enabled()) PoisonFill{}(*v);
    v->clear();  // destroys elements (releases their refs), keeps capacity
    ++stats_.recycled;
    --stats_.live;
    // Node is standard-layout-compatible: vec is its first (only) member.
    free_.push_back(reinterpret_cast<Node*>(v));
  }

  AllocTag tag_;
  std::vector<Node*> free_;
  PoolStats stats_;
};

// --- box pool -----------------------------------------------------------------

/// Pools single objects of T behind a unique-owner handle whose deleter
/// recycles the node. The point: an event callback capturing a Handle is
/// pointer-sized, so moving a Packet into a box keeps the whole capture
/// inside SmallFn's inline buffer. Recycling resets the object to T{} so
/// held references (payload buffers) release promptly.
template <typename T>
class BoxPool {
 public:
  struct Recycler {
    BoxPool* pool;
    void operator()(T* t) const noexcept { pool->recycle(t); }
  };
  using Handle = std::unique_ptr<T, Recycler>;

  BoxPool(std::string name, AllocTag tag) : tag_(tag) {
    register_pool_stats(name, &stats_);
  }
  BoxPool(const BoxPool&) = delete;
  BoxPool& operator=(const BoxPool&) = delete;

  Handle box(T&& v) {
    T* t;
    if (!free_.empty()) {
      t = free_.back();
      free_.pop_back();
      *t = std::move(v);
      ++stats_.hits;
    } else {
      ScopedAllocTag tag(tag_);
      ++stats_.misses;
      t = new T(std::move(v));
    }
    ++stats_.live;
    return Handle(t, Recycler{this});
  }

  const PoolStats& stats() const { return stats_; }

 private:
  void recycle(T* t) noexcept {
    *t = T{};
    ++stats_.recycled;
    --stats_.live;
    free_.push_back(t);
  }

  AllocTag tag_;
  std::vector<T*> free_;
  PoolStats stats_;
};

// --- frame arena --------------------------------------------------------------

/// Depth-indexed execution frames for the PLAN-P engines: frame d serves
/// call depth d, so the LIFO call discipline reuses the same locals / stack /
/// args vectors (and their capacity) packet after packet instead of
/// constructing fresh std::vectors per call. Frames are held by unique_ptr,
/// so references handed out stay stable while deeper frames are created.
template <typename T>
class FrameArena {
 public:
  struct Frame {
    std::vector<T> locals;
    std::vector<T> stack;
    std::vector<T> args;
  };

  FrameArena() = default;
  explicit FrameArena(std::string name) { register_pool_stats(name, &stats_); }
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  Frame& at_depth(std::size_t d) {
    if (d >= frames_.size()) grow(d);
    ++stats_.hits;
    return *frames_[d];
  }

  std::size_t depth() const { return frames_.size(); }

  /// Poison support: overwrite every slot of frame `d` with `sentinel` so a
  /// later read of a stale slot is unmistakable. Called by the engines after
  /// a channel body finishes when poison mode is on.
  void scribble(std::size_t d, const T& sentinel) {
    if (d >= frames_.size()) return;
    Frame& f = *frames_[d];
    std::fill(f.locals.begin(), f.locals.end(), sentinel);
    std::fill(f.stack.begin(), f.stack.end(), sentinel);
    std::fill(f.args.begin(), f.args.end(), sentinel);
  }

  const PoolStats& stats() const { return stats_; }

 private:
  void grow(std::size_t d) {
    ScopedAllocTag tag(AllocTag::kFrame);
    while (frames_.size() <= d) {
      frames_.push_back(std::make_unique<Frame>());
      ++stats_.misses;
    }
  }

  std::vector<std::unique_ptr<Frame>> frames_;
  PoolStats stats_;
};

}  // namespace asp::mem
