// Pooled-buffer & arena memory subsystem: the per-packet fast path must not
// touch the general-purpose allocator.
//
// Line-rate packet processors (P4 targets, kernel ASPs like the paper's
// Solaris module) reach "as fast as the hardware allows" by recycling every
// per-packet object through freelists sized at install time. This library
// supplies the building blocks the rest of the tree threads through its
// allocation sites:
//
//   SlabPool / SlabAllocator   size-classed raw blocks; backs the shared_ptr
//                              control blocks of pooled handles.
//   BufferPool                 recycles the byte vectors behind net::Buffer;
//                              the shared_ptr deleter returns storage (with
//                              its capacity) to a size-classed freelist when
//                              the last Payload / blob Value lets go.
//   VecPool<T>                 same discipline for std::vector<T> (PLAN-P
//                              tuple storage), keeping element capacity.
//   BoxPool<T>                 single-object boxes (in-flight Packets) so
//                              event callbacks capture one pointer instead of
//                              a 150-byte struct.
//   FrameArena<T>              per-engine, depth-indexed execution frames
//                              (locals / stack / args) reused packet to
//                              packet.
//
// Cross-cutting facilities:
//   AllocTag / ScopedAllocTag  thread-local attribution of heap allocations
//                              to a subsystem, so bench_fastpath can report
//                              allocs/packet per source (buffer / tuple /
//                              frame / event / other) instead of one
//                              aggregate.
//   poison-on-free             debug mode (ASP_MEM_POISON=1 or set_poison)
//                              that scribbles recycled memory so a
//                              use-after-recycle surfaces as loud garbage
//                              instead of silently reading stale bytes.
//
// All pools are process-lifetime leaked singletons: recycling deleters can
// run during static destruction (e.g. the shared empty payload buffer), so
// the pools they point at must never be destroyed.
//
// Threading model (DESIGN.md §6f): the parallel executor runs one event loop
// per shard, and pooled objects (payload buffers, control blocks, boxed
// packets) may be *freed* on a different shard than the one that allocated
// them (a packet crossing a shard boundary carries its buffer along). The
// process-wide pools therefore grow csuperalloc-style thread-local caches:
//
//   * the fast path (acquire/recycle) touches only the calling thread's
//     magazine — no lock, no shared cache line;
//   * magazine overflow / underflow moves a half-magazine batch through the
//     mutex-guarded shared spill slab (cold, amortized);
//   * a thread's magazine spills back to the shared slab at thread exit, so
//     short-lived executor workers don't strand capacity. Deleters that run
//     after a thread's cache is gone (static destruction, post-exit frees)
//     fall back to the locked shared slab directly.
//
// Pool statistics are relaxed atomics (obs::RelaxedU64): exact totals at
// barriers, no synchronization on the hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "obs/relaxed.hpp"

namespace asp::mem {

// --- allocation attribution ---------------------------------------------------

/// Which subsystem the current heap allocation (if any) belongs to. The
/// pools set this around their refill paths; bench_fastpath's replaced
/// operator new reads it to attribute every allocation.
enum class AllocTag : std::uint8_t {
  kOther = 0,
  kBuffer,  // payload / blob byte storage
  kTuple,   // PLAN-P tuple storage
  kFrame,   // interpreter / VM / JIT execution frames
  kEvent,   // event-queue callbacks (oversized captures)
  kCount,
};

AllocTag current_alloc_tag();
void set_alloc_tag(AllocTag t);

/// RAII attribution scope. Nested scopes override (innermost wins), so a
/// tuple-pool refill inside a channel body still counts as kTuple.
class ScopedAllocTag {
 public:
  explicit ScopedAllocTag(AllocTag t) : prev_(current_alloc_tag()) { set_alloc_tag(t); }
  ~ScopedAllocTag() { set_alloc_tag(prev_); }
  ScopedAllocTag(const ScopedAllocTag&) = delete;
  ScopedAllocTag& operator=(const ScopedAllocTag&) = delete;

 private:
  AllocTag prev_;
};

// --- poison-on-free -----------------------------------------------------------

/// When enabled, recycled byte storage is filled with kPoisonByte and
/// recycled Value slots with kPoisonInt before going back on a freelist, so
/// any still-live reference into recycled memory reads a loud sentinel.
/// Initialized from the ASP_MEM_POISON environment variable.
bool poison_enabled();
void set_poison(bool on);

inline constexpr std::uint8_t kPoisonByte = 0xA5;
inline constexpr std::int64_t kPoisonInt = 0x504F4953;  // "POIS"

// --- pool statistics ----------------------------------------------------------

/// Counters every pool keeps internally (own cells, not obs instruments:
/// recycling deleters may run during static destruction, after the metrics
/// registry is gone). publish_metrics() snapshots them into obs::registry().
/// The cells are relaxed atomics so any shard thread may bump them; totals
/// are exact at window barriers (every update is a commutative add).
struct PoolStats {
  obs::RelaxedU64 hits;            // acquisitions served from a freelist
  obs::RelaxedU64 misses;          // acquisitions that hit operator new
  obs::RelaxedU64 recycled;        // objects returned to a freelist
  obs::RelaxedU64 recycled_bytes;  // capacity of recycled byte storage
  obs::RelaxedU64 live;            // currently checked-out objects
};

/// Registers a pool's stats under `name` (e.g. "mem/buffer") for
/// publish_metrics(). The pointer must stay valid for the process lifetime
/// (all pools are leaked singletons, so it does).
void register_pool_stats(const std::string& name, const PoolStats* stats);

/// Copies every registered pool's counters into obs::registry() as gauges
/// (mem/<pool>/{hits,misses,recycled,recycled_bytes,live}), plus
/// mem/event/heap_captures. Benches call this right before exporting JSON.
void publish_metrics();

/// Oversized event-callback captures that fell back to the heap (see
/// SmallFn in smallfn.hpp). Kept here so pool.cpp owns all counters.
void note_heap_capture(std::size_t bytes);
std::uint64_t heap_capture_count();

// --- slab pool ----------------------------------------------------------------

/// Size-classed freelist allocator for small raw blocks (shared_ptr control
/// blocks, pooled box headers). Blocks are carved from chunked operator-new
/// refills and never returned to the OS; a free block's first word links the
/// freelist. Requests above kMaxBlock fall through to operator new.
///
/// Thread-safe: each thread keeps a private per-class magazine (linked stacks
/// capped at kMagazine blocks); the shared per-class freelists behind `mu_`
/// act as the spill slab. allocate/deallocate touch only the magazine on the
/// steady path; refill and overflow move half-magazine batches under the
/// lock. Blocks freed on a thread with no magazine (e.g. during static
/// destruction, after the thread cache spilled) go straight to the shared
/// slab.
class SlabPool {
 public:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static constexpr std::size_t kMaxBlock = 512;
  static constexpr int kChunkBlocks = 64;
  static constexpr int kMagazine = 64;  // per-thread, per-class cap

  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes) noexcept;

  const PoolStats& stats() const { return stats_; }

 private:
  static constexpr int kClasses = static_cast<int>(kMaxBlock / kAlign);
  static int class_of(std::size_t bytes) {
    return static_cast<int>((bytes + kAlign - 1) / kAlign) - 1;
  }

  struct ThreadCache;  // per-thread magazines (pool.cpp)
  static thread_local ThreadCache* tls_;  // trivially destructible slot
  ThreadCache* thread_cache(bool create);
  void* allocate_slow(int c, ThreadCache* tc);
  void spill_class(ThreadCache& tc, int c, int keep) noexcept;
  void spill_all(ThreadCache& tc) noexcept;

  std::mutex mu_;               // guards free_ (the shared spill slab)
  void* free_[kClasses] = {};
  PoolStats stats_;
};

/// The process-wide slab pool (leaked singleton).
SlabPool& slab_pool();

/// std::allocator-shaped adaptor over slab_pool(), used to put shared_ptr
/// control blocks of pooled handles on freelists.
template <typename T>
struct SlabAllocator {
  using value_type = T;
  SlabAllocator() noexcept = default;
  template <typename U>
  SlabAllocator(const SlabAllocator<U>&) noexcept {}  // NOLINT: converting

  T* allocate(std::size_t n) {
    return static_cast<T*>(slab_pool().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    slab_pool().deallocate(p, n * sizeof(T));
  }
  friend bool operator==(SlabAllocator, SlabAllocator) { return true; }
  friend bool operator!=(SlabAllocator, SlabAllocator) { return false; }
};

// --- buffer pool --------------------------------------------------------------

/// Recycles the `std::vector<std::uint8_t>` storage behind net::Buffer.
/// acquire() hands out a shared vector whose deleter returns the node (with
/// its capacity intact) to a capacity-classed freelist once the last
/// reference — Payload, blob Value, or aliased packet — drops. The returned
/// shared_ptr's control block comes from the slab pool, so a steady-state
/// acquire/release cycle performs zero heap allocations.
///
/// Thread-safe with the same magazine/spill-slab discipline as SlabPool: a
/// packet's payload buffer may be acquired on one shard and released on
/// another after crossing a shard boundary; the deleter pushes it onto the
/// releasing thread's magazine (or the locked shared slab when that thread
/// has no cache).
class BufferPool {
 public:
  using Bytes = std::vector<std::uint8_t>;
  using Handle = std::shared_ptr<Bytes>;
  static constexpr int kMagazine = 32;  // per-thread, per-class cap

  /// Empty vector with capacity >= `capacity_hint` (rounded to a class).
  Handle acquire(std::size_t capacity_hint);

  /// Wraps caller-built storage in a pooled handle: the vector's storage is
  /// adopted as-is (no copy); on release the node joins the freelist and the
  /// adopted capacity is recycled for future acquires.
  Handle adopt(Bytes&& bytes);

  const PoolStats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kBaseCapacity = 64;
  static constexpr int kClasses = 16;  // 64 B ... 2 MiB

  struct Node {
    Bytes bytes;
  };
  struct Recycler {
    BufferPool* pool;
    void operator()(Bytes* b) const noexcept { pool->recycle(b); }
  };

  // Smallest class whose guaranteed capacity covers `n` (for acquire).
  static int class_for_request(std::size_t n);
  // Largest class whose guaranteed capacity is <= `n` (for recycling).
  static int class_for_capacity(std::size_t n);

  struct ThreadCache;  // per-thread magazines (pool.cpp)
  static thread_local ThreadCache* tls_;  // trivially destructible slot
  ThreadCache* thread_cache(bool create);
  void spill_class(ThreadCache& tc, int c, std::size_t keep) noexcept;
  void spill_all(ThreadCache& tc) noexcept;

  Handle wrap(Node* n);
  void recycle(Bytes* b) noexcept;

  std::mutex mu_;  // guards free_ (the shared spill slab)
  std::vector<Node*> free_[kClasses];
  PoolStats stats_;
};

/// The process-wide buffer pool (leaked singleton).
BufferPool& buffer_pool();

// --- generic vector pool ------------------------------------------------------

/// BufferPool's discipline for std::vector<T>: pooled shared vectors whose
/// element capacity survives recycling. Used for PLAN-P tuple storage
/// (VecPool<Value>), where the per-packet decode tuples dominate.
///
/// PoisonFill is a customization point invoked on recycle when poison mode
/// is on (before the vector is cleared), so stale references into recycled
/// tuple storage read sentinels. The default does nothing.
template <typename T>
struct NoPoison {
  void operator()(std::vector<T>&) const {}
};

/// Sharing modes for the header-only pools (VecPool, BoxPool).
///   kShardConfined  single-owner pool: one shard (thread) does every
///                   acquire and release. No locks, no magazines — the
///                   default, used by per-engine pools.
///   kShared         process-wide singleton touched from any shard thread:
///                   fast path through a per-thread magazine, overflow /
///                   refill through a mutex-guarded shared freelist (the
///                   spill slab). Used by net::packet_boxes() and the PLAN-P
///                   tuple pool.
enum class PoolMode { kShardConfined, kShared };

template <typename T, typename PoisonFill = NoPoison<T>>
class VecPool {
 public:
  using Vec = std::vector<T>;
  using Handle = std::shared_ptr<Vec>;
  static constexpr std::size_t kMagazine = 64;  // per-thread cap (kShared)

  VecPool(std::string name, AllocTag tag, PoolMode mode = PoolMode::kShardConfined)
      : tag_(tag), shared_(mode == PoolMode::kShared) {
    register_pool_stats(name, &stats_);
  }
  VecPool(const VecPool&) = delete;
  VecPool& operator=(const VecPool&) = delete;

  /// Empty vector, capacity from its previous life. `reserve_hint` is
  /// honored on the (counted) miss path so steady-state pushes never grow.
  Handle acquire(std::size_t reserve_hint) {
    Node* n = shared_ ? take_shared() : take_local();
    if (n != nullptr) {
      ++stats_.hits;
      if (n->vec.capacity() < reserve_hint) {
        ScopedAllocTag tag(tag_);
        n->vec.reserve(reserve_hint);
      }
    } else {
      ScopedAllocTag tag(tag_);
      ++stats_.misses;
      n = new Node;
      n->vec.reserve(reserve_hint);
    }
    ++stats_.live;
    return Handle(&n->vec, Recycler{this}, SlabAllocator<Vec>{});
  }

  const PoolStats& stats() const { return stats_; }

 private:
  struct Node {
    Vec vec;
  };
  struct Recycler {
    VecPool* pool;
    void operator()(Vec* v) const noexcept { pool->recycle(v); }
  };
  struct ThreadCache {
    VecPool* owner = nullptr;
    std::vector<Node*> items;
  };

  static ThreadCache*& tls_slot() {
    // Trivially destructible: stays readable through static destruction; the
    // Holder nulls it when the thread's cache goes away.
    static thread_local ThreadCache* slot = nullptr;
    return slot;
  }

  ThreadCache* thread_cache(bool create) {
    ThreadCache* tc = tls_slot();
    if (tc != nullptr) return tc->owner == this ? tc : nullptr;
    if (!create) return nullptr;
    struct Holder {
      ThreadCache cache;
      ~Holder() {
        if (cache.owner != nullptr) cache.owner->spill_all(cache);
        tls_slot() = nullptr;
      }
    };
    static thread_local Holder holder;
    if (holder.cache.owner != nullptr && holder.cache.owner != this) {
      return nullptr;  // another instance owns this thread's cache slot
    }
    holder.cache.owner = this;
    tls_slot() = &holder.cache;
    return &holder.cache;
  }

  Node* take_local() {
    if (free_.empty()) return nullptr;
    Node* n = free_.back();
    free_.pop_back();
    return n;
  }

  Node* take_shared() {
    ThreadCache* tc = thread_cache(true);
    if (tc != nullptr && !tc->items.empty()) {
      Node* n = tc->items.back();
      tc->items.pop_back();
      return n;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return nullptr;
    Node* n = free_.back();
    free_.pop_back();
    if (tc != nullptr) {  // pull half a magazine while we hold the lock
      std::size_t batch = std::min(free_.size(), kMagazine / 2);
      ScopedAllocTag tag(tag_);
      for (std::size_t i = 0; i < batch; ++i) {
        tc->items.push_back(free_.back());
        free_.pop_back();
      }
    }
    return n;
  }

  void spill_half(ThreadCache& tc) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    while (tc.items.size() > kMagazine / 2) {
      free_.push_back(tc.items.back());
      tc.items.pop_back();
    }
  }

  void spill_all(ThreadCache& tc) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    for (Node* n : tc.items) free_.push_back(n);
    tc.items.clear();
  }

  void recycle(Vec* v) noexcept {
    if (poison_enabled()) PoisonFill{}(*v);
    v->clear();  // destroys elements (releases their refs), keeps capacity
    ++stats_.recycled;
    --stats_.live;
    // Node is standard-layout-compatible: vec is its first (only) member.
    Node* n = reinterpret_cast<Node*>(v);
    if (!shared_) {
      free_.push_back(n);
      return;
    }
    // Never *create* a cache on the free path: deleters may run during
    // static destruction, after this thread's cache was torn down.
    if (ThreadCache* tc = thread_cache(false)) {
      tc->items.push_back(n);
      if (tc->items.size() > kMagazine) spill_half(*tc);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(n);
  }

  AllocTag tag_;
  const bool shared_;
  std::mutex mu_;  // kShared only: guards free_
  std::vector<Node*> free_;
  PoolStats stats_;
};

// --- box pool -----------------------------------------------------------------

/// Pools single objects of T behind a unique-owner handle whose deleter
/// recycles the node. The point: an event callback capturing a Handle is
/// pointer-sized, so moving a Packet into a box keeps the whole capture
/// inside SmallFn's inline buffer. Recycling resets the object to T{} so
/// held references (payload buffers) release promptly.
template <typename T>
class BoxPool {
 public:
  struct Recycler {
    BoxPool* pool;
    void operator()(T* t) const noexcept { pool->recycle(t); }
  };
  using Handle = std::unique_ptr<T, Recycler>;
  static constexpr std::size_t kMagazine = 64;  // per-thread cap (kShared)

  BoxPool(std::string name, AllocTag tag, PoolMode mode = PoolMode::kShardConfined)
      : tag_(tag), shared_(mode == PoolMode::kShared) {
    register_pool_stats(name, &stats_);
  }
  BoxPool(const BoxPool&) = delete;
  BoxPool& operator=(const BoxPool&) = delete;

  Handle box(T&& v) {
    T* t = shared_ ? take_shared() : take_local();
    if (t != nullptr) {
      *t = std::move(v);
      ++stats_.hits;
    } else {
      ScopedAllocTag tag(tag_);
      ++stats_.misses;
      t = new T(std::move(v));
    }
    ++stats_.live;
    return Handle(t, Recycler{this});
  }

  /// Copy-in overload: assigns straight into the recycled node, skipping the
  /// temporary + move a `box(T(v))` call would pay. Used by batch producers
  /// that fan one packet out into many boxes.
  Handle box(const T& v) {
    T* t = shared_ ? take_shared() : take_local();
    if (t != nullptr) {
      *t = v;
      ++stats_.hits;
    } else {
      ScopedAllocTag tag(tag_);
      ++stats_.misses;
      t = new T(v);
    }
    ++stats_.live;
    return Handle(t, Recycler{this});
  }

  const PoolStats& stats() const { return stats_; }

 private:
  struct ThreadCache {
    BoxPool* owner = nullptr;
    std::vector<T*> items;
  };

  static ThreadCache*& tls_slot() {
    static thread_local ThreadCache* slot = nullptr;  // trivially destructible
    return slot;
  }

  ThreadCache* thread_cache(bool create) {
    ThreadCache* tc = tls_slot();
    if (tc != nullptr) return tc->owner == this ? tc : nullptr;
    if (!create) return nullptr;
    struct Holder {
      ThreadCache cache;
      ~Holder() {
        if (cache.owner != nullptr) cache.owner->spill_all(cache);
        tls_slot() = nullptr;
      }
    };
    static thread_local Holder holder;
    if (holder.cache.owner != nullptr && holder.cache.owner != this) {
      return nullptr;
    }
    holder.cache.owner = this;
    tls_slot() = &holder.cache;
    return &holder.cache;
  }

  T* take_local() {
    if (free_.empty()) return nullptr;
    T* t = free_.back();
    free_.pop_back();
    return t;
  }

  T* take_shared() {
    ThreadCache* tc = thread_cache(true);
    if (tc != nullptr && !tc->items.empty()) {
      T* t = tc->items.back();
      tc->items.pop_back();
      return t;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return nullptr;
    T* t = free_.back();
    free_.pop_back();
    if (tc != nullptr) {
      std::size_t batch = std::min(free_.size(), kMagazine / 2);
      ScopedAllocTag tag(tag_);
      for (std::size_t i = 0; i < batch; ++i) {
        tc->items.push_back(free_.back());
        free_.pop_back();
      }
    }
    return t;
  }

  void spill_half(ThreadCache& tc) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    while (tc.items.size() > kMagazine / 2) {
      free_.push_back(tc.items.back());
      tc.items.pop_back();
    }
  }

  void spill_all(ThreadCache& tc) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    for (T* t : tc.items) free_.push_back(t);
    tc.items.clear();
  }

  void recycle(T* t) noexcept {
    *t = T{};
    ++stats_.recycled;
    --stats_.live;
    if (!shared_) {
      free_.push_back(t);
      return;
    }
    if (ThreadCache* tc = thread_cache(false)) {  // never create on free
      tc->items.push_back(t);
      if (tc->items.size() > kMagazine) spill_half(*tc);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(t);
  }

  AllocTag tag_;
  const bool shared_;
  std::mutex mu_;  // kShared only: guards free_
  std::vector<T*> free_;
  PoolStats stats_;
};

// --- frame arena --------------------------------------------------------------

/// Depth-indexed execution frames for the PLAN-P engines: frame d serves
/// call depth d, so the LIFO call discipline reuses the same locals / stack /
/// args vectors (and their capacity) packet after packet instead of
/// constructing fresh std::vectors per call. Frames are held by unique_ptr,
/// so references handed out stay stable while deeper frames are created.
template <typename T>
class FrameArena {
 public:
  struct Frame {
    std::vector<T> locals;
    std::vector<T> stack;
    std::vector<T> args;
  };

  FrameArena() = default;
  explicit FrameArena(std::string name) { register_pool_stats(name, &stats_); }
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  Frame& at_depth(std::size_t d) {
    if (d >= frames_.size()) grow(d);
    ++stats_.hits;
    return *frames_[d];
  }

  std::size_t depth() const { return frames_.size(); }

  /// Poison support: overwrite every slot of frame `d` with `sentinel` so a
  /// later read of a stale slot is unmistakable. Called by the engines after
  /// a channel body finishes when poison mode is on.
  void scribble(std::size_t d, const T& sentinel) {
    if (d >= frames_.size()) return;
    Frame& f = *frames_[d];
    std::fill(f.locals.begin(), f.locals.end(), sentinel);
    std::fill(f.stack.begin(), f.stack.end(), sentinel);
    std::fill(f.args.begin(), f.args.end(), sentinel);
  }

  const PoolStats& stats() const { return stats_; }

 private:
  void grow(std::size_t d) {
    ScopedAllocTag tag(AllocTag::kFrame);
    while (frames_.size() <= d) {
      frames_.push_back(std::make_unique<Frame>());
      ++stats_.misses;
    }
  }

  std::vector<std::unique_ptr<Frame>> frames_;
  PoolStats stats_;
};

}  // namespace asp::mem
