// Shard-local pooled memory: the per-packet fast path must not touch the
// general-purpose allocator OR any shared mutable cache line.
//
// Line-rate packet processors (P4 targets, kernel ASPs like the paper's
// Solaris module) reach "as fast as the hardware allows" by recycling every
// per-packet object through freelists sized at install time. PR 4 built the
// pools; this layer makes them scale: every pool instance is owned by exactly
// ONE shard (mem/shard.hpp binds a shard to a thread), so the steady-state
// alloc/free path is plain single-threaded code — no locks, no atomics except
// relaxed stat counters — and cross-shard frees ride a lock-free MPSC
// remote-free channel drained by the owner at window barriers, exactly how
// cross-shard frames already flow through net/mailbox.hpp.
//
//   SlabPool          size-classed raw blocks carved from 64 KiB-aligned
//                     chunks; a hierarchical binmap (mem/binmap.hpp) per class
//                     answers "which chunk has a free block" in three
//                     find-first-set steps. Backs shared_ptr control blocks.
//   BufferPool        recycles the byte vectors behind net::Buffer with their
//                     capacity, classed by power-of-two capacity.
//   VecPool<T>        same discipline for std::vector<T> (PLAN-P tuples).
//   BoxPool<T>        single-object boxes (in-flight Packets) so event
//                     callbacks capture one pointer instead of ~150 bytes.
//   FrameArena<T>     per-engine, depth-indexed execution frames — engine-
//                     confined, unchanged by the sharding.
//
// Ownership & the remote-free protocol (DESIGN.md §6e):
//   * Every pooled object records its HOME pool: slab blocks resolve their
//     chunk header by address mask (chunks are kChunkAlign-aligned and carry
//     `home`), node pools (Buffer/Vec/Box) keep a `home` field in the node —
//     the per-block ownership header.
//   * Allocation only ever touches the calling shard's own instance.
//   * A free executed on the owning shard goes straight back on the freelist.
//   * A free executed anywhere else (a packet's buffer crossing a shard
//     boundary, a release after the owning thread exited, static
//     destruction) pushes the object onto the home pool's remote-free
//     channel: a Treiber-stack CAS, never a lock, never a touch of the
//     owner's freelists.
//   * The owner drains its channels at window barriers (net/exec.cpp), when
//     a local freelist runs empty, and at thread exit — so remote frees are
//     reclaimed without ever synchronizing the hot path.
//
// The only locked operations left are the cold registry paths (stats
// registration, shard binding) and the ORPHAN pools that serve allocations on
// threads whose shard binding was already torn down (static destruction);
// every orphan acquisition is counted in `spills`, and benches assert the
// counter stays 0 in steady state.
//
// Pool statistics are relaxed atomics (obs::RelaxedU64): exact totals at
// barriers, no synchronization on the hot path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "mem/binmap.hpp"
#include "obs/relaxed.hpp"

namespace asp::mem {

// --- allocation attribution ---------------------------------------------------

/// Which subsystem the current heap allocation (if any) belongs to. The
/// pools set this around their refill paths; bench_fastpath's replaced
/// operator new reads it to attribute every allocation.
enum class AllocTag : std::uint8_t {
  kOther = 0,
  kBuffer,  // payload / blob byte storage
  kTuple,   // PLAN-P tuple storage
  kFrame,   // interpreter / VM / JIT execution frames
  kEvent,   // event-queue callbacks (oversized captures)
  kCount,
};

AllocTag current_alloc_tag();
void set_alloc_tag(AllocTag t);

/// RAII attribution scope. Nested scopes override (innermost wins), so a
/// tuple-pool refill inside a channel body still counts as kTuple.
class ScopedAllocTag {
 public:
  explicit ScopedAllocTag(AllocTag t) : prev_(current_alloc_tag()) { set_alloc_tag(t); }
  ~ScopedAllocTag() { set_alloc_tag(prev_); }
  ScopedAllocTag(const ScopedAllocTag&) = delete;
  ScopedAllocTag& operator=(const ScopedAllocTag&) = delete;

 private:
  AllocTag prev_;
};

// --- poison-on-free -----------------------------------------------------------

/// When enabled, recycled byte storage is filled with kPoisonByte and
/// recycled Value slots with kPoisonInt before going back on a freelist, so
/// any still-live reference into recycled memory reads a loud sentinel.
/// Initialized from the ASP_MEM_POISON environment variable.
bool poison_enabled();
void set_poison(bool on);

inline constexpr std::uint8_t kPoisonByte = 0xA5;
inline constexpr std::int64_t kPoisonInt = 0x504F4953;  // "POIS"

// --- shard binding hooks (implemented in shard.cpp) ---------------------------

/// Opaque identity of the shard bound to the calling thread, or nullptr when
/// the thread is unbound (shard binding torn down during static destruction,
/// or never established). The free path compares a pool's owner token against
/// this to decide local-freelist vs remote-channel — a single TLS read.
const void* current_owner_token() noexcept;

class SlabPool;
/// The calling shard's slab (lazily binding the thread); used by the
/// default-constructed SlabAllocator.
SlabPool& current_slab();

// --- pool statistics ----------------------------------------------------------

/// Counters every pool keeps internally (own cells, not obs instruments:
/// recycling deleters may run during static destruction, after the metrics
/// registry is gone). publish_metrics() snapshots them into obs::registry().
/// The cells are relaxed atomics — remote frees bump the HOME pool's stats
/// from foreign threads; every update is a commutative add, so totals are
/// exact at window barriers.
struct PoolStats {
  obs::RelaxedU64 hits;            // acquisitions served from a freelist
  obs::RelaxedU64 misses;          // acquisitions that hit operator new
  obs::RelaxedU64 recycled;        // objects returned to a freelist
  obs::RelaxedU64 recycled_bytes;  // capacity of recycled byte storage
  obs::RelaxedU64 live;            // currently checked-out objects
  obs::RelaxedU64 remote_freed;    // frees pushed onto the remote channel
  obs::RelaxedU64 remote_drained;  // remote frees reclaimed by the owner
  obs::RelaxedU64 spills;          // locked orphan-path operations (0 steady)

  /// Test hook: zeroes every counter except `live` (which tracks real
  /// checked-out objects and must stay truthful across resets).
  void reset_counters() {
    hits = 0;
    misses = 0;
    recycled = 0;
    recycled_bytes = 0;
    remote_freed = 0;
    remote_drained = 0;
    spills = 0;
  }
};

/// Registers a pool's stats under `name` (e.g. "mem/shard0/slab") for
/// publish_metrics(). The pointer must stay valid for the process lifetime
/// (shard pool instances are leaked, so it does).
void register_pool_stats(const std::string& name, const PoolStats* stats);

/// Copies every registered pool's counters into obs::registry() as gauges
/// (mem/shard<K>/<pool>/{hits,misses,recycled,recycled_bytes,live,
/// remote_freed,remote_drained,spills}), plus mem/event/heap_captures.
/// Benches call this right before exporting JSON.
void publish_metrics();

/// Plain-value totals across every registered pool (all shards + orphan).
/// Benches difference these around a steady-state loop: `spills` is the
/// "did anything take a mutex on the pool path" probe CI gates on, and
/// `remote_freed == remote_drained` after final drains proves no block is
/// stranded on a channel.
struct PoolTotals {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t recycled = 0;
  std::uint64_t live = 0;
  std::uint64_t remote_freed = 0;
  std::uint64_t remote_drained = 0;
  std::uint64_t spills = 0;
};
PoolTotals total_pool_stats();

/// Oversized event-callback captures that fell back to the heap (see
/// SmallFn in smallfn.hpp). Kept here so pool.cpp owns all counters.
void note_heap_capture(std::size_t bytes);
std::uint64_t heap_capture_count();

/// Event-queue slab growth: one chunk of pooled calendar-queue entries
/// (net/event.cpp). Process-wide (queues are shard-confined but short-lived
/// in tests, so per-queue PoolStats registration would dangle); published as
/// mem/event/slab_chunks / slab_bytes.
void note_event_slab_chunk(std::size_t bytes);
std::uint64_t event_slab_chunk_count();

// --- remote-free channels -----------------------------------------------------

/// Lock-free MPSC stack of raw blocks: any thread pushes (Treiber CAS, the
/// block's first word is the link), only the owning shard drains. The same
/// design as net::Mailbox — remote frees are to pools what cross-shard
/// frames are to event queues, and they synchronize the same way (release
/// push / acquire drain).
class RemoteFreeChannel {
 public:
  void push(void* p) noexcept {
    void* h = head_.load(std::memory_order_relaxed);
    do {
      *static_cast<void**>(p) = h;
    } while (!head_.compare_exchange_weak(h, p, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Owner only. Returns the whole chain (first-word links), or nullptr.
  void* take_all() noexcept { return head_.exchange(nullptr, std::memory_order_acquire); }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<void*> head_{nullptr};
};

/// RemoteFreeChannel for node-based pools whose nodes hold live C++ objects:
/// the link is an explicit `remote_next` member, so pushing never clobbers
/// the node's contents.
template <typename Node>
class RemoteFreeList {
 public:
  void push(Node* n) noexcept {
    Node* h = head_.load(std::memory_order_relaxed);
    do {
      n->remote_next = h;
    } while (!head_.compare_exchange_weak(h, n, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  Node* take_all() noexcept { return head_.exchange(nullptr, std::memory_order_acquire); }

  bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) == nullptr;
  }

 private:
  std::atomic<Node*> head_{nullptr};
};

// --- pool base ----------------------------------------------------------------

/// Common surface the shard registry (mem/shard.hpp) drives: barrier drains,
/// test purges/resets. Virtual dispatch only on these cold paths — the
/// alloc/free fast paths are direct calls on the concrete types.
class PoolBase {
 public:
  virtual ~PoolBase() = default;
  /// Owner thread (or locked orphan): reclaim everything queued on the
  /// remote-free channel into the local freelists.
  virtual void drain_remote() = 0;
  /// Test hook: release every free object back to the system so the next
  /// acquisition deterministically misses. Live objects are untouched.
  virtual void purge_free() = 0;

  const PoolStats& stats() const { return stats_; }
  void reset_stats_for_test() { stats_.reset_counters(); }

 protected:
  PoolStats stats_;
};

/// Engages a pool's mutex only in locked (orphan) mode; shard-owned pools
/// construct this with nullptr and never touch a lock.
class MaybeLock {
 public:
  explicit MaybeLock(std::mutex* m) : m_(m) {
    if (m_ != nullptr) m_->lock();
  }
  ~MaybeLock() {
    if (m_ != nullptr) m_->unlock();
  }
  MaybeLock(const MaybeLock&) = delete;
  MaybeLock& operator=(const MaybeLock&) = delete;

 private:
  std::mutex* m_;
};

// --- slab pool ----------------------------------------------------------------

/// Size-classed allocator for small raw blocks (shared_ptr control blocks of
/// pooled handles). Blocks are carved from kChunkAlign-aligned chunks of 64
/// blocks; each chunk keeps a one-word free mask and each class a
/// hierarchical Binmap over its chunks, so allocation is find-first-set all
/// the way down — no freelist walk, no lock. The chunk header doubles as the
/// ownership header: any pointer masks back to its chunk, which names the
/// home pool. Requests above kMaxBlock fall through to operator new.
///
/// Single-owner: allocate()/drain_remote() run only on the owning shard's
/// thread (the orphan instance locks instead and counts spills). deallocate()
/// runs anywhere — it routes by the chunk's home pool, pushing onto the
/// remote-free channel when the caller is not the owner.
class SlabPool : public PoolBase {
 public:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static constexpr std::size_t kMaxBlock = 512;
  static constexpr int kChunkBlocks = 64;
  static constexpr std::size_t kChunkAlign = 64 * 1024;

  /// `owner_token` identifies the owning shard for free-path routing
  /// (nullptr = orphan, always routed remotely); `locked` guards every
  /// owner-side operation with a mutex (orphan only).
  SlabPool(const std::string& name, const void* owner_token, bool locked);
  ~SlabPool() override;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  void* allocate(std::size_t bytes);
  /// Any thread. Routes to the block's home pool regardless of which
  /// instance it is invoked on.
  void deallocate(void* p, std::size_t bytes) noexcept;

  void drain_remote() override;
  void purge_free() override;

 private:
  struct Chunk {
    std::uint64_t free_mask = 0;  // bit b set = block b free
    SlabPool* home = nullptr;
    std::uint32_t cls = 0;
    std::uint32_t dir_index = 0;  // position in the class directory

    std::uint8_t* base() {
      return reinterpret_cast<std::uint8_t*>(this) + kBlockOffset;
    }
  };
  // First block offset inside a chunk: past the header, cache-line aligned.
  static constexpr std::size_t kBlockOffset = 128;
  static_assert(sizeof(Chunk) <= kBlockOffset);
  static_assert(kBlockOffset + kChunkBlocks * kMaxBlock <= kChunkAlign);

  struct ClassDir {
    Binmap avail;                // chunks with at least one free block
    std::vector<Chunk*> chunks;  // every chunk of the class, dir_index-stable
  };

  static constexpr int kClasses = static_cast<int>(kMaxBlock / kAlign);
  static int class_of(std::size_t bytes) {
    return static_cast<int>((bytes + kAlign - 1) / kAlign) - 1;
  }
  static std::size_t block_size(int c) {
    return static_cast<std::size_t>(c + 1) * kAlign;
  }
  static Chunk* chunk_of(void* p) {
    return reinterpret_cast<Chunk*>(reinterpret_cast<std::uintptr_t>(p) &
                                    ~(kChunkAlign - 1));
  }

  std::mutex* lock_if() { return locked_ ? &mu_ : nullptr; }
  void* refill(int c);
  void free_local(Chunk* ch, void* p) noexcept;
  void drain_remote_unlocked() noexcept;

  const void* owner_token_;
  const bool locked_;
  std::mutex mu_;  // engaged only when locked_ (orphan)
  ClassDir dirs_[kClasses];
  RemoteFreeChannel remote_;
};

/// std::allocator-shaped adaptor over a shard's SlabPool, used to put
/// shared_ptr control blocks of pooled handles on freelists. Stateful (which
/// slab serves *allocations*), but deallocation routes by the block's home,
/// so all instances compare equal.
template <typename T>
struct SlabAllocator {
  using value_type = T;
  SlabPool* slab;

  SlabAllocator() noexcept : slab(&current_slab()) {}
  explicit SlabAllocator(SlabPool& s) noexcept : slab(&s) {}
  template <typename U>
  SlabAllocator(const SlabAllocator<U>& o) noexcept : slab(o.slab) {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(slab->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    slab->deallocate(p, n * sizeof(T));
  }
  friend bool operator==(SlabAllocator, SlabAllocator) { return true; }
  friend bool operator!=(SlabAllocator, SlabAllocator) { return false; }
};

// --- buffer pool --------------------------------------------------------------

/// Recycles the `std::vector<std::uint8_t>` storage behind net::Buffer.
/// acquire() hands out a shared vector whose deleter returns the node (with
/// its capacity intact) to a capacity-classed freelist once the last
/// reference — Payload, blob Value, or aliased packet — drops. The returned
/// shared_ptr's control block comes from the owning shard's slab pool, so a
/// steady-state acquire/release cycle performs zero heap allocations.
///
/// Single-owner with remote-free routing: the deleter may run on any shard
/// (a packet's payload crosses shard boundaries); it pushes the node onto
/// the home pool's remote channel unless the caller IS the owner.
class BufferPool : public PoolBase {
 public:
  using Bytes = std::vector<std::uint8_t>;
  using Handle = std::shared_ptr<Bytes>;

  BufferPool(const std::string& name, SlabPool& slab, const void* owner_token,
             bool locked);
  ~BufferPool() override;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Empty vector with capacity >= `capacity_hint` (rounded to a class).
  Handle acquire(std::size_t capacity_hint);

  /// Wraps caller-built storage in a pooled handle: the vector's storage is
  /// adopted as-is (no copy); on release the node joins the freelist and the
  /// adopted capacity is recycled for future acquires.
  Handle adopt(Bytes&& bytes);

  void drain_remote() override;
  void purge_free() override;

 private:
  static constexpr std::size_t kBaseCapacity = 64;
  static constexpr int kClasses = 16;  // 64 B ... 2 MiB

  struct Node {
    Bytes bytes;  // must stay first: handles point at it, recycle casts back
    Node* remote_next = nullptr;
    BufferPool* home = nullptr;
  };
  struct Recycler {
    void operator()(Bytes* b) const noexcept { BufferPool::route_free(b); }
  };

  // Smallest class whose guaranteed capacity covers `n` (for acquire).
  static int class_for_request(std::size_t n);
  // Largest class whose guaranteed capacity is <= `n` (for recycling).
  static int class_for_capacity(std::size_t n);

  /// Free-path entry, any thread: poisons/clears on the freeing thread so
  /// aliased references are released promptly, then routes by `home`.
  static void route_free(Bytes* b) noexcept;

  std::mutex* lock_if() { return locked_ ? &mu_ : nullptr; }
  Handle wrap(Node* n);
  void recycle_local(Node* n) noexcept;
  void drain_remote_unlocked() noexcept;

  const void* owner_token_;
  const bool locked_;
  std::mutex mu_;  // engaged only when locked_ (orphan)
  SlabPool* slab_;
  std::vector<Node*> free_[kClasses];
  RemoteFreeList<Node> remote_;
};

// --- generic vector pool ------------------------------------------------------

/// BufferPool's discipline for std::vector<T>: pooled shared vectors whose
/// element capacity survives recycling. Used for PLAN-P tuple storage
/// (VecPool<Value>), where the per-packet decode tuples dominate.
///
/// PoisonFill is a customization point invoked on recycle when poison mode
/// is on (before the vector is cleared), so stale references into recycled
/// tuple storage read sentinels. The default does nothing.
template <typename T>
struct NoPoison {
  void operator()(std::vector<T>&) const {}
};

template <typename T, typename PoisonFill = NoPoison<T>>
class VecPool : public PoolBase {
 public:
  using Vec = std::vector<T>;
  using Handle = std::shared_ptr<Vec>;

  VecPool(const std::string& name, AllocTag tag, SlabPool& slab,
          const void* owner_token, bool locked)
      : tag_(tag), owner_token_(owner_token), locked_(locked), slab_(&slab) {
    register_pool_stats(name, &stats_);
  }
  ~VecPool() override { purge_free(); }
  VecPool(const VecPool&) = delete;
  VecPool& operator=(const VecPool&) = delete;

  /// Owner thread only (callers reach their own shard's instance through
  /// mem/shard.hpp). Empty vector, capacity from its previous life;
  /// `reserve_hint` is honored on the (counted) miss path so steady-state
  /// pushes never grow.
  Handle acquire(std::size_t reserve_hint) {
    MaybeLock lk(lock_if());
    if (locked_) ++stats_.spills;
    if (free_.empty() && !remote_.empty()) drain_remote_unlocked();
    Node* n = nullptr;
    if (!free_.empty()) {
      n = free_.back();
      free_.pop_back();
      ++stats_.hits;
      if (n->vec.capacity() < reserve_hint) {
        ScopedAllocTag tag(tag_);
        n->vec.reserve(reserve_hint);
      }
    } else {
      ScopedAllocTag tag(tag_);
      ++stats_.misses;
      n = new Node;
      n->home = this;
      n->vec.reserve(reserve_hint);
    }
    ++stats_.live;
    return Handle(&n->vec, Recycler{}, SlabAllocator<Vec>{*slab_});
  }

  void drain_remote() override {
    MaybeLock lk(lock_if());
    drain_remote_unlocked();
  }

  void purge_free() override {
    MaybeLock lk(lock_if());
    drain_remote_unlocked();
    for (Node* n : free_) delete n;
    free_.clear();
  }

 private:
  struct Node {
    Vec vec;  // must stay first: handles point at it, recycle casts back
    Node* remote_next = nullptr;
    VecPool* home = nullptr;
  };
  struct Recycler {
    void operator()(Vec* v) const noexcept { VecPool::route_free(v); }
  };

  /// Free-path entry, any thread. Clears on the freeing thread (element
  /// references — blobs pinning buffers — must release promptly), then
  /// routes by home: owner -> freelist, anyone else -> remote channel.
  static void route_free(Vec* v) noexcept {
    Node* n = reinterpret_cast<Node*>(v);
    VecPool* home = n->home;
    if (poison_enabled()) PoisonFill{}(*v);
    v->clear();  // destroys elements (releases their refs), keeps capacity
    --home->stats_.live;
    if (home->owner_token_ != nullptr &&
        home->owner_token_ == current_owner_token()) {
      ++home->stats_.recycled;
      home->free_.push_back(n);
      return;
    }
    ++home->stats_.remote_freed;
    home->remote_.push(n);
  }

  void drain_remote_unlocked() noexcept {
    Node* n = remote_.take_all();
    while (n != nullptr) {
      Node* next = n->remote_next;
      ++stats_.remote_drained;
      ++stats_.recycled;
      free_.push_back(n);
      n = next;
    }
  }

  std::mutex* lock_if() { return locked_ ? &mu_ : nullptr; }

  AllocTag tag_;
  const void* owner_token_;
  const bool locked_;
  std::mutex mu_;  // engaged only when locked_ (orphan)
  SlabPool* slab_;
  std::vector<Node*> free_;
  RemoteFreeList<Node> remote_;
};

// --- box pool -----------------------------------------------------------------

/// Pools single objects of T behind a unique-owner handle whose deleter
/// recycles the node. The point: an event callback capturing a Handle is
/// pointer-sized, so moving a Packet into a box keeps the whole capture
/// inside SmallFn's inline buffer. Recycling resets the object to T{} on the
/// freeing thread (held references — payload buffers — release promptly),
/// then routes the node home like every other pool.
template <typename T>
class BoxPool : public PoolBase {
 public:
  struct Recycler {
    void operator()(T* t) const noexcept { BoxPool::route_free(t); }
  };
  using Handle = std::unique_ptr<T, Recycler>;

  BoxPool(const std::string& name, AllocTag tag, const void* owner_token,
          bool locked)
      : tag_(tag), owner_token_(owner_token), locked_(locked) {
    register_pool_stats(name, &stats_);
  }
  ~BoxPool() override { purge_free(); }
  BoxPool(const BoxPool&) = delete;
  BoxPool& operator=(const BoxPool&) = delete;

  /// Owner thread only.
  Handle box(T&& v) {
    Node* n = take();
    if (n != nullptr) {
      n->value = std::move(v);
    } else {
      n = fresh();
      n->value = std::move(v);
    }
    ++stats_.live;
    return Handle(&n->value, Recycler{});
  }

  /// Copy-in overload: assigns straight into the recycled node, skipping the
  /// temporary + move a `box(T(v))` call would pay. Used by batch producers
  /// that fan one packet out into many boxes.
  Handle box(const T& v) {
    Node* n = take();
    if (n != nullptr) {
      n->value = v;
    } else {
      n = fresh();
      n->value = v;
    }
    ++stats_.live;
    return Handle(&n->value, Recycler{});
  }

  void drain_remote() override {
    MaybeLock lk(lock_if());
    drain_remote_unlocked();
  }

  void purge_free() override {
    MaybeLock lk(lock_if());
    drain_remote_unlocked();
    for (Node* n : free_) delete n;
    free_.clear();
  }

 private:
  struct Node {
    T value{};  // must stay first: handles point at it, recycle casts back
    Node* remote_next = nullptr;
    BoxPool* home = nullptr;
  };

  static void route_free(T* t) noexcept {
    Node* n = reinterpret_cast<Node*>(t);
    BoxPool* home = n->home;
    *t = T{};  // releases held references on the freeing thread
    --home->stats_.live;
    if (home->owner_token_ != nullptr &&
        home->owner_token_ == current_owner_token()) {
      ++home->stats_.recycled;
      home->free_.push_back(n);
      return;
    }
    ++home->stats_.remote_freed;
    home->remote_.push(n);
  }

  Node* take() {
    MaybeLock lk(lock_if());
    if (locked_) ++stats_.spills;
    if (free_.empty() && !remote_.empty()) drain_remote_unlocked();
    if (free_.empty()) return nullptr;
    Node* n = free_.back();
    free_.pop_back();
    ++stats_.hits;
    return n;
  }

  Node* fresh() {
    ScopedAllocTag tag(tag_);
    ++stats_.misses;
    Node* n = new Node;
    n->home = this;
    return n;
  }

  void drain_remote_unlocked() noexcept {
    Node* n = remote_.take_all();
    while (n != nullptr) {
      Node* next = n->remote_next;
      ++stats_.remote_drained;
      ++stats_.recycled;
      free_.push_back(n);
      n = next;
    }
  }

  std::mutex* lock_if() { return locked_ ? &mu_ : nullptr; }

  AllocTag tag_;
  const void* owner_token_;
  const bool locked_;
  std::mutex mu_;  // engaged only when locked_ (orphan)
  std::vector<Node*> free_;
  RemoteFreeList<Node> remote_;
};

// --- frame arena --------------------------------------------------------------

/// Depth-indexed execution frames for the PLAN-P engines: frame d serves
/// call depth d, so the LIFO call discipline reuses the same locals / stack /
/// args vectors (and their capacity) packet after packet instead of
/// constructing fresh std::vectors per call. Frames are held by unique_ptr,
/// so references handed out stay stable while deeper frames are created.
/// Engine-confined (an engine runs on one shard at a time), so no routing.
template <typename T>
class FrameArena {
 public:
  struct Frame {
    std::vector<T> locals;
    std::vector<T> stack;
    std::vector<T> args;
  };

  FrameArena() = default;
  explicit FrameArena(std::string name) { register_pool_stats(name, &stats_); }
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;

  Frame& at_depth(std::size_t d) {
    if (d >= frames_.size()) grow(d);
    ++stats_.hits;
    return *frames_[d];
  }

  std::size_t depth() const { return frames_.size(); }

  /// Poison support: overwrite every slot of frame `d` with `sentinel` so a
  /// later read of a stale slot is unmistakable. Called by the engines after
  /// a channel body finishes when poison mode is on.
  void scribble(std::size_t d, const T& sentinel) {
    if (d >= frames_.size()) return;
    Frame& f = *frames_[d];
    std::fill(f.locals.begin(), f.locals.end(), sentinel);
    std::fill(f.stack.begin(), f.stack.end(), sentinel);
    std::fill(f.args.begin(), f.args.end(), sentinel);
  }

  const PoolStats& stats() const { return stats_; }

 private:
  void grow(std::size_t d) {
    ScopedAllocTag tag(AllocTag::kFrame);
    while (frames_.size() <= d) {
      frames_.push_back(std::make_unique<Frame>());
      ++stats_.misses;
    }
  }

  std::vector<std::unique_ptr<Frame>> frames_;
  PoolStats stats_;
};

}  // namespace asp::mem
