// RelaxedU64: a drop-in counter cell for statistics shared across shard
// threads.
//
// The parallel executor (net/exec.hpp) runs one thread per shard; counters
// that more than one shard may touch (obs::Counter, Medium delivery/drop
// counts, pool statistics) become relaxed atomics. Relaxed is enough because
// every such field is a pure commutative sum — no reader makes a control
// decision from a mid-window value, and window barriers (acq/rel on the
// executor's synchronization) order everything that matters. The final totals
// are exact and deterministic regardless of thread interleaving.
#pragma once

#include <atomic>
#include <cstdint>

namespace asp::obs {

/// Monotone-ish uint64 cell with relaxed atomic ops and value semantics on
/// copy (copies snapshot the current value). Increments compile to a single
/// uncontended `lock add` on x86 — cheap enough for the per-packet path.
class RelaxedU64 {
 public:
  RelaxedU64() = default;
  explicit RelaxedU64(std::uint64_t v) : v_(v) {}
  RelaxedU64(const RelaxedU64& o) : v_(o.load()) {}
  RelaxedU64& operator=(const RelaxedU64& o) {
    store(o.load());
    return *this;
  }
  RelaxedU64& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }

  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  operator std::uint64_t() const { return load(); }  // NOLINT: drop-in reads

  RelaxedU64& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator--() {
    v_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator+=(std::uint64_t n) {
    v_.fetch_add(n, std::memory_order_relaxed);
    return *this;
  }
  RelaxedU64& operator-=(std::uint64_t n) {
    v_.fetch_sub(n, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

}  // namespace asp::obs
