// Observability: a lightweight metrics subsystem (paper-evaluation plumbing).
//
// The paper's whole evaluation is quantitative — codegen latency (Figure 3),
// per-router bandwidth adaptation (Figures 5-7), HTTP cluster throughput
// (Figure 8) — so every layer of this reproduction reports into a
// MetricsRegistry, and every bench snapshots the registry to a
// machine-readable BENCH_<name>.json next to its stdout report.
//
// Instruments:
//   Counter    monotone uint64 (packets, bytes, errors).
//   Gauge      last-written double (levels, rates).
//   Histogram  fixed log2-bucket distribution with p50/p90/p99 estimates
//              (latencies in microseconds, sizes in bytes).
//
// Names are hierarchical, slash-separated, lowercase:
//   node/<node-name>/<layer>/<metric>     e.g. node/router/asp/packets_handled
//   planp/<stage>/<metric>                e.g. planp/jit/codegen_us
// Units ride in the final component (_us, _bytes, _bps) so exported JSON is
// self-describing.
//
// A process-wide default registry (obs::registry()) collects everything; the
// simulator's nodes and the PLAN-P pipeline register into it keyed by node
// name, so metrics accumulate across Network instances within one process
// (benches construct many). Components that need exact per-instance figures
// capture a baseline at construction and report deltas (see
// runtime::AspRuntime::stats()).
//
// Thread-safety (see DESIGN.md §6f): Counter and Gauge are relaxed atomics —
// any shard thread may bump them concurrently through a cached pointer with
// no lock on the hot path; the totals are exact because every write is a
// commutative add/last-write. Instrument *creation* (counter()/gauge()/
// histogram()) takes the registry mutex, so a runtime install on one shard
// can mint instruments while other shards keep incrementing theirs.
// Histograms are NOT atomic: each histogram must be observed from a single
// shard (all of ours are per-node, and a node lives on exactly one shard).
// Whole-registry snapshots (to_json, counters(), reset) are barrier-only:
// call them when no shard is mid-window (before run, after run, or from the
// coordinator at a window barrier).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "obs/relaxed.hpp"

namespace asp::obs {

/// Monotonically increasing event count. Thread-safe (relaxed atomic):
/// concurrent inc() from any shard, exact total at barriers.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_.load(); }
  void reset() { value_ = 0; }

 private:
  RelaxedU64 value_;
};

/// Last-written instantaneous value. Thread-safe (relaxed atomic): set() is a
/// plain store, add() a CAS loop; last writer wins across shards.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed log2-bucket histogram over non-negative values.
///
/// Bucket 0 covers [0, 1]; bucket i (i >= 1) covers (2^(i-1), 2^i]. Exact
/// count/sum/min/max are kept alongside, and quantile() interpolates linearly
/// inside the selected bucket with the bucket bounds clamped to the observed
/// [min, max] — for smooth distributions the estimate lands within a few
/// percent of the true quantile (tests/obs_metrics_test.cpp pins this down).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0; }
  double max() const { return count_ > 0 ? max_ : 0; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0; }

  /// Estimated value at quantile q in [0, 1]. 0 when empty.
  double quantile(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }
  /// Inclusive upper bound of bucket i (1, 2, 4, ... as doubles).
  static double bucket_upper_bound(int i);

  void reset() { *this = Histogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Owns every instrument, keyed by hierarchical name. Instruments are created
/// on first access and live as long as the registry; returned references stay
/// valid across later registrations (std::map node stability).
///
/// Thread-safety: creation lookups lock `mu_` (cold path — callers cache the
/// returned pointer/reference and then increment lock-free). The map
/// accessors counters()/gauges()/histograms(), to_json and reset() read the
/// maps unlocked and are barrier-only under the parallel executor.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
  }
  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    return histograms_[name];
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Zeroes every instrument without invalidating cached references.
  void reset();

 private:
  std::mutex mu_;  // guards map mutation only; instruments are lock-free
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide default registry every layer reports into.
MetricsRegistry& registry();

/// Per-instance instrument mode. When ON (the default) every Node/Medium
/// registers its own node/<name>/... and medium/<name>/... instruments. The
/// scenario generators (src/scenario) turn it OFF around construction of
/// internet-scale topologies: 10^4 nodes x ~14 instruments would put ~10^5
/// entries in the registry and megabytes in every BENCH_*.json, so instead
/// all instances constructed while the mode is off share one aggregate set
/// (node/_agg/net/*, medium/_agg/*). Aggregate counters stay deterministic
/// under the sharded executor (atomic adds commute); per-instance statistics
/// remain available on the objects themselves. Setup-time only: flip it
/// before constructing a topology, never while a simulation runs.
bool instance_metrics_enabled();
void set_instance_metrics_enabled(bool on);

/// RAII guard: turns per-instance instruments off for a construction scope.
class ScopedCoarseMetrics {
 public:
  ScopedCoarseMetrics() : prev_(instance_metrics_enabled()) {
    set_instance_metrics_enabled(false);
  }
  ~ScopedCoarseMetrics() { set_instance_metrics_enabled(prev_); }
  ScopedCoarseMetrics(const ScopedCoarseMetrics&) = delete;
  ScopedCoarseMetrics& operator=(const ScopedCoarseMetrics&) = delete;

 private:
  bool prev_;
};

/// Serializes a registry as deterministic (name-sorted) JSON:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"<name>": {"count": .., "sum": .., "min": .., "max": ..,
///                              "mean": .., "p50": .., "p90": .., "p99": ..,
///                              "buckets": {"<upper-bound>": <count>, ...}}}}
std::string to_json(const MetricsRegistry& reg);

/// Writes to_json(reg) to `path`. Returns false on I/O failure.
bool write_json(const MetricsRegistry& reg, const std::string& path);

/// Bench exit hook: snapshots the default registry to BENCH_<bench_name>.json
/// in the working directory and prints the path. Returns the path ("" on
/// failure).
std::string write_bench_json(const std::string& bench_name);

/// Bench-harness hygiene: runs `sample` `warmup` times discarded (cache and
/// branch-predictor warm-up), then `reps` more times, records the median in
/// gauge `name` of the default registry, and returns it. Medians over a
/// handful of repetitions are what the bench exporters should publish —
/// one-shot readings on a shared machine are noise.
double record_stabilized_gauge(const std::string& name,
                               const std::function<double()>& sample,
                               int warmup = 1, int reps = 5);

}  // namespace asp::obs
