#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace asp::obs {

namespace {

// Bucket index for a value: 0 for v <= 1, else ceil(log2(v)) clamped to the
// last bucket. Computed with integer shifts to stay exact at the power-of-two
// boundaries (bucket i covers (2^(i-1), 2^i]).
int bucket_index(double v) {
  if (!(v > 1.0)) return 0;  // also catches NaN
  if (v >= 9.223372036854776e18) return Histogram::kBuckets - 1;
  auto u = static_cast<std::uint64_t>(std::ceil(v));
  int idx = 0;
  std::uint64_t bound = 1;
  while (bound < u && idx < Histogram::kBuckets - 1) {
    bound <<= 1;
    ++idx;
  }
  return idx;
}

}  // namespace

void Histogram::observe(double v) {
  if (std::isnan(v)) return;
  if (v < 0) v = 0;
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

double Histogram::bucket_upper_bound(int i) {
  return i <= 0 ? 1.0 : std::ldexp(1.0, i);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min();
  if (q >= 1) return max();
  double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      // Interpolate within the bucket, clamping its nominal bounds to the
      // observed range so degenerate buckets don't overshoot.
      double lo = i == 0 ? 0.0 : bucket_upper_bound(i - 1);
      double hi = bucket_upper_bound(i);
      if (lo < min_) lo = min_;
      if (hi > max_) hi = max_;
      if (hi < lo) hi = lo;
      double frac = (target - static_cast<double>(cum)) /
                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    cum += in_bucket;
  }
  return max();
}

MetricsRegistry& registry() {
  static MetricsRegistry reg;
  return reg;
}

namespace {
// Setup-time flag (topologies are built single-threaded); atomic so a stray
// read from a worker is still defined.
std::atomic<bool> g_instance_metrics{true};
}  // namespace

bool instance_metrics_enabled() {
  return g_instance_metrics.load(std::memory_order_relaxed);
}

void set_instance_metrics_enabled(bool on) {
  g_instance_metrics.store(on, std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_histogram(std::string& out, const Histogram& h) {
  out += "{\"count\": ";
  out += std::to_string(h.count());
  out += ", \"sum\": ";
  append_number(out, h.sum());
  out += ", \"min\": ";
  append_number(out, h.min());
  out += ", \"max\": ";
  append_number(out, h.max());
  out += ", \"mean\": ";
  append_number(out, h.mean());
  out += ", \"p50\": ";
  append_number(out, h.quantile(0.50));
  out += ", \"p90\": ";
  append_number(out, h.quantile(0.90));
  out += ", \"p99\": ";
  append_number(out, h.quantile(0.99));
  out += ", \"buckets\": {";
  bool first = true;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    std::uint64_t n = h.buckets()[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (!first) out += ", ";
    first = false;
    std::string bound;
    append_number(bound, Histogram::bucket_upper_bound(i));
    append_escaped(out, bound);
    out += ": ";
    out += std::to_string(n);
  }
  out += "}}";
}

}  // namespace

std::string to_json(const MetricsRegistry& reg) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : reg.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": ";
    out += std::to_string(c.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : reg.gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": ";
    append_number(out, g.value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : reg.histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    append_escaped(out, name);
    out += ": ";
    append_histogram(out, h);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

bool write_json(const MetricsRegistry& reg, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = to_json(reg);
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::string write_bench_json(const std::string& bench_name) {
  std::string path = "BENCH_" + bench_name + ".json";
  if (!write_json(registry(), path)) {
    std::fprintf(stderr, "[obs] FAILED to write %s\n", path.c_str());
    return "";
  }
  std::printf("[obs] metrics snapshot written to %s\n", path.c_str());
  return path;
}

double record_stabilized_gauge(const std::string& name,
                               const std::function<double()>& sample,
                               int warmup, int reps) {
  for (int i = 0; i < warmup; ++i) sample();
  if (reps < 1) reps = 1;
  std::vector<double> runs;
  runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) runs.push_back(sample());
  std::sort(runs.begin(), runs.end());
  // Median: middle element, or the mean of the middle pair for even reps.
  std::size_t mid = runs.size() / 2;
  double median = runs.size() % 2 == 1 ? runs[mid] : (runs[mid - 1] + runs[mid]) / 2.0;
  registry().gauge(name).set(median);
  return median;
}

}  // namespace asp::obs
