// Regenerates the human-readable ASP files in /asps from the embedded
// sources (the build's asp_files_test asserts they stay in sync).
//
// Run from the repository root:  ./build/tools/gen_asps
#include <fstream>

#include "apps/asp_sources.hpp"
#include "net/network.hpp"

using namespace asp;

int main() {
  auto w = [](const char* path, const std::string& s) { std::ofstream(path) << s; };
  w("asps/audio_router.planp", apps::audio_router_asp());
  w("asps/audio_client.planp", apps::audio_client_asp());
  w("asps/http_gateway.planp",
    apps::http_gateway_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                           net::ip("131.254.60.109")));
  w("asps/http_gateway_hash.planp",
    apps::http_gateway_hash_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                                net::ip("131.254.60.109")));
  w("asps/http_gateway_failover.planp",
    apps::http_gateway_failover_asp(net::ip("10.0.9.9"), net::ip("131.254.60.81"),
                                    net::ip("131.254.60.109")));
  w("asps/mpeg_monitor.planp", apps::mpeg_monitor_asp(net::ip("10.0.1.1")));
  w("asps/mpeg_reply.planp", apps::mpeg_reply_asp());
  w("asps/mpeg_capture.planp",
    apps::mpeg_capture_asp(net::ip("192.168.1.1"), 7000, 7010));
  w("asps/image_distill.planp", apps::image_distill_asp());
  w("asps/cache_proxy.planp", apps::cache_proxy_asp(net::ip("10.0.2.1")));
  w("asps/bridge.planp", apps::bridge_asp());
  w("asps/audio_router_hysteresis.planp", apps::audio_router_hysteresis_asp());
  return 0;
}
