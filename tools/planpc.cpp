// planpc — the PLAN-P compiler driver.
//
//   planpc check   file.planp      parse + type check
//   planpc analyze file.planp      run the four safety analyses
//   planpc disasm  file.planp      bytecode listing
//   planpc jit     file.planp      specialized-template listing + codegen stats
//   planpc run     file.planp N    feed N synthetic packets through channel 0
//
// This is the "operating system designer" workflow of the paper: evolve the
// DSL in the interpreter, inspect what the specializer generates, then deploy.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "planp/analysis.hpp"
#include "planp/disasm.hpp"
#include "planp/parser.hpp"
#include "planp/program.hpp"

using namespace asp::planp;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: planpc {check|analyze|disasm|jit|run} file.planp [packets]\n");
  return 2;
}

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "planpc: cannot read %s\n", path);
    std::exit(1);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Value synthetic_packet(const TypePtr& type, int i) {
  std::vector<Value> fields;
  for (const TypePtr& part : type->args()) {
    switch (part->kind()) {
      case Type::Kind::kIp: {
        asp::net::IpHeader h;
        h.src = asp::net::Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(1 + i % 200));
        h.dst = asp::net::Ipv4Addr(10, 0, 9, 9);
        fields.push_back(Value::of_ip(h));
        break;
      }
      case Type::Kind::kTcp:
        fields.push_back(Value::of_tcp(
            {static_cast<std::uint16_t>(30000 + i), 80, 0, 0, 0, 0}));
        break;
      case Type::Kind::kUdp:
        fields.push_back(
            Value::of_udp({static_cast<std::uint16_t>(30000 + i), 5004}));
        break;
      case Type::Kind::kChar:
        fields.push_back(Value::of_char(static_cast<char>('0' + i % 3)));
        break;
      case Type::Kind::kInt:
        fields.push_back(Value::of_int(i));
        break;
      case Type::Kind::kBool:
        fields.push_back(Value::of_bool(i % 2 == 0));
        break;
      default:
        fields.push_back(Value::of_blob(std::vector<std::uint8_t>(64, 0xAB)));
        break;
    }
  }
  return Value::of_tuple(std::move(fields));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const char* cmd = argv[1];
  std::string source = slurp(argv[2]);

  try {
    CheckedProgram checked = typecheck(parse(source));

    if (std::strcmp(cmd, "check") == 0) {
      std::printf("%s: OK (%zu channels, %zu functions, %zu globals, %d lines)\n",
                  argv[2], checked.channels.size(), checked.functions.size(),
                  checked.globals.size(), checked.program.source_lines);
      return 0;
    }

    if (std::strcmp(cmd, "analyze") == 0) {
      AnalysisReport r = analyze(checked);
      std::printf("local termination    : %s\n", r.local_termination ? "proved" : "NO");
      std::printf("global termination   : %s (%d states) %s\n",
                  r.global_termination ? "proved" : "unproved", r.states_explored,
                  r.global_termination ? "" : ("- " + r.global_termination_detail).c_str());
      std::printf("guaranteed delivery  : %s %s\n",
                  r.guaranteed_delivery ? "proved" : "unproved",
                  r.guaranteed_delivery ? "" : ("- " + r.delivery_detail).c_str());
      std::printf("linear duplication   : %s (%d fix-point iters) %s\n",
                  r.linear_duplication ? "proved" : "unproved", r.fixpoint_iterations,
                  r.linear_duplication ? "" : ("- " + r.duplication_detail).c_str());
      std::printf("download gate        : %s\n",
                  r.accepted() ? "ACCEPT" : "REJECT (authentication required)");
      return r.accepted() ? 0 : 3;
    }

    CompiledProgram compiled = compile(checked);

    if (std::strcmp(cmd, "disasm") == 0) {
      std::fputs(disassemble(compiled).c_str(), stdout);
      return 0;
    }

    NullEnv env;
    JitEngine jit(compiled, env);

    if (std::strcmp(cmd, "jit") == 0) {
      const CodegenStats& s = jit.codegen_stats();
      std::printf("; %d lines -> %zu bytecode instrs -> %zu templates (%zu bytes)"
                  " in %.4f ms\n",
                  s.source_lines, s.input_instrs, s.output_instrs, s.code_bytes,
                  s.generation_ms);
      for (std::size_t i = 0; i < compiled.channel_bodies.size(); ++i) {
        std::printf("channel %s (%s):\n", checked.channels[i]->name.c_str(),
                    checked.channels[i]->packet_type->str().c_str());
        std::fputs(disassemble(specialize_block(compiled.channel_bodies[i], compiled))
                       .c_str(),
                   stdout);
      }
      return 0;
    }

    if (std::strcmp(cmd, "run") == 0) {
      if (checked.channels.empty()) {
        std::fprintf(stderr, "planpc: program has no channels\n");
        return 1;
      }
      int n = argc > 3 ? std::atoi(argv[3]) : 5;
      Value ps = default_value(checked.channels[0]->ps_type);
      Value ss = jit.init_state(0);
      for (int i = 0; i < n; ++i) {
        Value pkt = synthetic_packet(checked.channels[0]->packet_type, i);
        try {
          Value out = jit.run_channel(0, ps, ss, pkt);
          ps = out.as_tuple()[0];
          ss = out.as_tuple()[1];
          std::printf("packet %d: ps=%s sends=%zu delivers=%zu drops=%d\n", i,
                      ps.str().c_str(), env.sends.size(), env.delivered.size(),
                      env.drops);
        } catch (const PlanPException& e) {
          std::printf("packet %d: PLAN-P exception '%s'\n", i, e.name.c_str());
        }
      }
      if (!env.output.empty()) {
        std::printf("--- program output ---\n%s", env.output.c_str());
      }
      return 0;
    }

    return usage();
  } catch (const PlanPError& e) {
    std::fprintf(stderr, "planpc: %s\n", e.what());
    return 1;
  }
}
