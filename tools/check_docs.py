#!/usr/bin/env python3
"""Docs consistency gate (CI: "Docs link check").

Two checks, both cheap and both about drift that review misses:

 1. Every relative markdown link in README.md, DESIGN.md, EXPERIMENTS.md
    and docs/*.md resolves to a file in the repo (anchors are checked
    against the target's headings).
 2. Every primitive registered in src/planp/primitives.cpp appears in
    docs/ASP_GUIDE.md's reference tables — adding a primitive without
    documenting it fails CI here, not in review.

Run from the repo root: python3 tools/check_docs.py
"""
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.M)


def anchor_of(heading):
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation out."""
    a = heading.strip().lower()
    a = re.sub(r"[^\w\s§./-]", "", a, flags=re.UNICODE)
    a = re.sub(r"[\s./§]+", "-", a).strip("-")
    return re.sub(r"-+", "-", a)


def check_links():
    errors = []
    docs = list(DOC_FILES)
    docs_dir = os.path.join(ROOT, "docs")
    if os.path.isdir(docs_dir):
        docs += [os.path.join("docs", f) for f in sorted(os.listdir(docs_dir))
                 if f.endswith(".md")]
    for doc in docs:
        path = os.path.join(ROOT, doc)
        if not os.path.exists(path):
            continue
        text = open(path, encoding="utf-8").read()
        base = os.path.dirname(path)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, frag = target.partition("#")
            tpath = os.path.normpath(os.path.join(base, file_part)) \
                if file_part else path
            if not os.path.exists(tpath):
                errors.append(f"{doc}: broken link -> {target}")
                continue
            if frag and tpath.endswith(".md"):
                headings = HEADING_RE.findall(open(tpath, encoding="utf-8").read())
                if frag not in {anchor_of(h) for h in headings}:
                    errors.append(f"{doc}: dead anchor -> {target}")
    return errors


def registered_primitives():
    src = open(os.path.join(ROOT, "src/planp/primitives.cpp"),
               encoding="utf-8").read()
    return sorted(set(re.findall(r'\badd\(\s*"(\w+)"', src)))


def check_primitives_table():
    guide_path = os.path.join(ROOT, "docs/ASP_GUIDE.md")
    if not os.path.exists(guide_path):
        return ["docs/ASP_GUIDE.md missing (primitives manual)"]
    guide = open(guide_path, encoding="utf-8").read()
    prims = registered_primitives()
    missing = [p for p in prims if f"`{p}(" not in guide and f" {p}(" not in guide]
    return [f"docs/ASP_GUIDE.md: primitive `{p}` registered in "
            "src/planp/primitives.cpp but not documented" for p in missing]


def main():
    errors = check_links() + check_primitives_table()
    for e in errors:
        print(f"FAIL: {e}", file=sys.stderr)
    n = len(registered_primitives())
    if not errors:
        print(f"docs OK: links resolve, all {n} primitives documented")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
